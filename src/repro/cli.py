"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``models`` / ``systems`` — list the zoos.
* ``plan`` — choose policies and estimate one request.
* ``policy-map`` — print a Fig. 9-style policy grid.
* ``sweep`` — estimate a (batch, L_in, L_out) grid in parallel.
* ``trace`` — run a workload and write a Perfetto/Chrome trace plus
  a metrics summary (see docs/OBSERVABILITY.md).
* ``faults`` — run a degraded-serving simulation under a seeded
  fault scenario (see docs/ROBUSTNESS.md).
* ``serve`` — vectorized million-request serving simulation with
  multi-replica scale-out (see docs/PERFORMANCE.md).
* ``monitor`` — windowed serving observability: time-series metrics,
  SLO burn-rate alerts with fault attribution, Perfetto counter
  tracks, CSV, and an HTML dashboard (see docs/OBSERVABILITY.md).
* ``fleet`` — fleet resilience: replica chaos with health-checked
  failover and trace-driven reactive autoscaling (see
  docs/ROBUSTNESS.md).
* ``experiment`` — run experiment drivers and print (or export) the
  tables.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.config import LiaConfig
from repro.core.estimator import LiaEstimator
from repro.core.optimizer import optimal_policy
from repro.errors import ConfigurationError, ReproError
from repro.hardware.cpu import CPU_ZOO
from repro.hardware.gpu import GPU_ZOO
from repro.hardware.system import SYSTEM_ZOO, get_system
from repro.models.sublayers import Stage
from repro.models.workload import InferenceRequest
from repro.models.zoo import MODEL_ZOO, get_model


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LIA reproduction: cooperative AMX CPU-GPU LLM "
                    "inference with CXL offloading (ISCA 2025)")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("models", help="list the model zoo")
    commands.add_parser("systems", help="list system configurations")
    commands.add_parser(
        "calibrate",
        help="verify the simulators against the paper's measured "
             "anchors")

    plan = commands.add_parser(
        "plan", help="choose policies and estimate one request")
    plan.add_argument("--model", default="opt-175b")
    plan.add_argument("--system", default="spr-h100")
    plan.add_argument("--batch", type=int, default=1)
    plan.add_argument("--input-len", type=int, default=256)
    plan.add_argument("--output-len", type=int, default=32)
    plan.add_argument("--enforce-memory", action="store_true",
                      help="fail on host-memory overflow instead of "
                           "using the analytical model")
    plan.add_argument("--cxl", action="store_true",
                      help="attach 2 CXL expanders and move weights "
                           "there (§6)")

    grid = commands.add_parser(
        "policy-map", help="print a Fig. 9-style policy grid")
    grid.add_argument("--model", default="opt-175b")
    grid.add_argument("--system", default="spr-a100")
    grid.add_argument("--stage", choices=["prefill", "decode"],
                      default="decode")
    grid.add_argument("--batches", type=int, nargs="+",
                      default=[1, 16, 64, 256, 900])
    grid.add_argument("--lengths", type=int, nargs="+",
                      default=[32, 256, 1024, 2048])

    sweep = commands.add_parser(
        "sweep", help="estimate a (batch, input-len, output-len) grid "
                      "in parallel")
    sweep.add_argument("--model", default="opt-30b")
    sweep.add_argument("--system", default="spr-a100")
    sweep.add_argument("--batches", type=int, nargs="+",
                       default=[1, 16, 64])
    sweep.add_argument("--input-lens", type=int, nargs="+",
                       default=[32, 256, 1024])
    sweep.add_argument("--output-lens", type=int, nargs="+",
                       default=[32])
    sweep.add_argument("--decode-eval", choices=["exact", "fast"],
                       default="fast",
                       help="per-step decode loop vs closed-form "
                            "summation (see docs/PERFORMANCE.md)")
    sweep.add_argument("--workers", type=int, default=None,
                       help="sweep worker threads (default: cpu count, "
                            "capped; 0 = serial; env "
                            "REPRO_SWEEP_WORKERS)")
    sweep.add_argument("--processes", type=int, default=None,
                       help="sweep worker *processes* — scales past "
                            "the GIL with bit-identical results "
                            "(default: env REPRO_SWEEP_PROCESSES; "
                            "0 disables the process pool)")
    sweep.add_argument("--json", default="",
                       help="also write the rows as JSON here")

    trace = commands.add_parser(
        "trace", help="run a workload and write a Perfetto/Chrome "
                      "trace (.trace.json) plus a metrics summary")
    trace.add_argument("--mode",
                       choices=["engine", "serving", "schedule"],
                       default="engine",
                       help="engine: functional CooperativeEngine run; "
                            "serving: FIFO queue simulation; schedule: "
                            "DES overlap schedule (Fig. 7)")
    trace.add_argument("--model", default="opt-tiny")
    trace.add_argument("--system", default="spr-a100")
    trace.add_argument("--batch", type=int, default=1)
    trace.add_argument("--input-len", type=int, default=8)
    trace.add_argument("--output-len", type=int, default=4)
    trace.add_argument("--requests", type=int, default=8,
                       help="serving mode: number of requests")
    trace.add_argument("--rate", type=float, default=1.0,
                       help="serving mode: Poisson arrival rate "
                            "(requests/s)")
    trace.add_argument("--prefill-policy", default="auto",
                       help="engine mode: 'auto' (Eq. 1 optimum) or a "
                            "6-bit vector like 011000 (1 = CPU)")
    trace.add_argument("--decode-policy", default="auto",
                       help="engine mode: same format as "
                            "--prefill-policy")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--out", default="repro.trace.json",
                       help="trace path; the metrics summary lands "
                            "next to it as <name>.metrics.json")

    faults = commands.add_parser(
        "faults", help="run a serving simulation under a fault "
                       "scenario (degraded GPU/PCIe/CXL/CPU, see "
                       "docs/ROBUSTNESS.md)")
    faults.add_argument("--scenario", default="",
                        help="path to a scenario spec (JSON; YAML when "
                             "pyyaml is installed)")
    faults.add_argument("--preset", default="",
                        help="built-in scenario name (see "
                             "--list-presets)")
    faults.add_argument("--list-presets", action="store_true",
                        help="list built-in scenarios and exit")
    faults.add_argument("--model", default="opt-30b")
    faults.add_argument("--system", default="spr-a100")
    faults.add_argument("--requests", type=int, default=16)
    faults.add_argument("--rate", type=float, default=0.05,
                        help="Poisson arrival rate (requests/s)")
    faults.add_argument("--batch", type=int, default=8)
    faults.add_argument("--input-len", type=int, default=512)
    faults.add_argument("--output-len", type=int, default=64)
    faults.add_argument("--seed", type=int, default=0,
                        help="arrival-process seed (fault draws use "
                             "the scenario's own seed)")
    faults.add_argument("--out", default="",
                        help="write a Perfetto/Chrome trace here "
                             "(metrics summary lands next to it)")
    faults.add_argument("--json", default="",
                        help="write the machine-readable report here")

    serve = commands.add_parser(
        "serve", help="vectorized serving simulation: millions of "
                      "Poisson requests, optional replica scale-out "
                      "(see docs/PERFORMANCE.md)")
    serve.add_argument("--model", default="opt-30b")
    serve.add_argument("--system", default="spr-a100")
    serve.add_argument("--num-requests", type=int, default=100_000)
    serve.add_argument("--rate", type=float, default=0.05,
                       help="Poisson arrival rate (requests/s)")
    serve.add_argument("--seed", type=int, default=0,
                       help="seed for both the shape mix and the "
                            "arrival process")
    serve.add_argument("--replicas", type=int, default=1,
                       help="fleet size (k independent FIFO servers)")
    serve.add_argument("--dispatch", choices=["round-robin",
                                              "least-loaded"],
                       default="round-robin")
    serve.add_argument("--streaming", action="store_true",
                       help="constant-memory percentiles (histogram "
                            "sketch) regardless of request count")
    serve.add_argument("--shape", action="append", default=[],
                       metavar="B,L_IN,L_OUT",
                       help="request shape in the mix (repeatable); "
                            "default: a 4-shape tier-1 mix")
    serve.add_argument("--slo-p95", type=float, default=0.0,
                       help="instead of a fixed fleet, find the "
                            "smallest one whose p95 meets this SLO "
                            "(seconds)")
    serve.add_argument("--scheduler", choices=["fifo", "continuous"],
                       default="fifo",
                       help="serving policy: FIFO queue (default) or "
                            "iteration-level continuous batching with "
                            "KV-tier-aware admission")
    serve.add_argument("--max-batch", type=int, default=8,
                       help="continuous scheduler: max requests "
                            "sharing the running batch")
    serve.add_argument("--join", choices=["step", "drain"],
                       default="step",
                       help="continuous scheduler: admit at every "
                            "decode step, or only into an empty "
                            "batch")
    serve.add_argument("--kv-hbm-gb", type=float, default=0.0,
                       help="override the HBM KV budget (GB); "
                            "0 derives it from the system")
    serve.add_argument("--kv-ddr-gb", type=float, default=0.0,
                       help="override the DDR KV budget (GB)")
    serve.add_argument("--kv-cxl-gb", type=float, default=0.0,
                       help="override the CXL KV budget (GB)")
    serve.add_argument("--kv-unbounded", action="store_true",
                       help="disable KV admission control entirely")
    serve.add_argument("--json", default="",
                       help="write the machine-readable report here")

    monitor = commands.add_parser(
        "monitor", help="windowed serving observability: time-series "
                        "metrics, SLO burn-rate alerts with fault "
                        "attribution, and exported dashboards (see "
                        "docs/OBSERVABILITY.md)")
    monitor.add_argument("--model", default="opt-30b")
    monitor.add_argument("--system", default="spr-a100")
    monitor.add_argument("--num-requests", type=int, default=20_000)
    monitor.add_argument("--rate", type=float, default=0.05,
                         help="Poisson arrival rate (requests/s)")
    monitor.add_argument("--seed", type=int, default=0,
                         help="seed for both the shape mix and the "
                              "arrival process")
    monitor.add_argument("--replicas", type=int, default=1,
                         help="fleet size; >1 adds the per-replica "
                              "dashboard section")
    monitor.add_argument("--dispatch", choices=["round-robin",
                                                "least-loaded"],
                         default="round-robin")
    monitor.add_argument("--shape", action="append", default=[],
                         metavar="B,L_IN,L_OUT",
                         help="request shape in the mix (repeatable); "
                              "default: a 4-shape tier-1 mix")
    monitor.add_argument("--preset", default="",
                         help="fault scenario preset (e.g. "
                              "gpu-pressure, pcie-flaky; see "
                              "`repro faults --list-presets`); runs "
                              "the degraded loop server and "
                              "attributes alerts to its fault "
                              "windows")
    monitor.add_argument("--windows", type=int, default=256,
                         help="number of time windows in the series")
    monitor.add_argument("--slo-threshold", type=float, default=0.0,
                         help="bad-request latency threshold "
                              "(seconds); 0 auto-picks 1.25x the "
                              "run's p95")
    monitor.add_argument("--error-budget", type=float, default=0.05,
                         help="tolerated bad-request fraction")
    monitor.add_argument("--burn-threshold", type=float, default=2.0,
                         help="alert when both rolling burn rates "
                              "reach this multiple of budget")
    monitor.add_argument("--long-window", type=float, default=0.0,
                         help="long burn-rate lookback (seconds); "
                              "0 = 1/8 of the run")
    monitor.add_argument("--short-window", type=float, default=0.0,
                         help="short burn-rate lookback (seconds); "
                              "0 = 1/12 of the long window")
    monitor.add_argument("--out", default="",
                         help="write a Perfetto/Chrome trace with "
                              "counter tracks here")
    monitor.add_argument("--csv", default="",
                         help="write the windowed series as CSV here")
    monitor.add_argument("--html", default="",
                         help="write a self-contained HTML dashboard "
                              "here")
    monitor.add_argument("--json", default="",
                         help="write the machine-readable monitoring "
                              "report here")

    fleet = commands.add_parser(
        "fleet", help="fleet resilience simulation: replica chaos, "
                      "health-checked failover, and reactive "
                      "autoscaling over a workload trace (see "
                      "docs/ROBUSTNESS.md)")
    fleet.add_argument("--preset", default="bursty-chaos",
                       help="fleet preset pairing a trace with a "
                            "chaos scenario (see --list-presets)")
    fleet.add_argument("--list-presets", action="store_true",
                       help="list built-in fleet presets and exit")
    fleet.add_argument("--trace", default="",
                       help="override the trace: a preset name "
                            "(steady, diurnal, bursty, heavy-tail, "
                            "sessions) or a spec file (JSON; YAML "
                            "when pyyaml is installed)")
    fleet.add_argument("--chaos", default="",
                       help="override the chaos scenario: a preset "
                            "name (see `repro fleet --list-presets`) "
                            "or a spec file")
    fleet.add_argument("--model", default="opt-30b")
    fleet.add_argument("--system", default="spr-a100")
    fleet.add_argument("--num-requests", type=int, default=0,
                       help="override the trace's request count")
    fleet.add_argument("--replicas", type=int, default=0,
                       help="override the preset's initial fleet size")
    fleet.add_argument("--seed", type=int, default=0,
                       help="shape-mix seed (the trace carries its "
                            "own seed)")
    fleet.add_argument("--shape", action="append", default=[],
                       metavar="B,L_IN,L_OUT",
                       help="request shape in the mix (repeatable); "
                            "default: a 4-shape tier-1 mix")
    fleet.add_argument("--scheduler", choices=["fifo", "continuous"],
                       default="fifo",
                       help="per-replica serving policy; continuous "
                            "batching requires an idle chaos "
                            "scenario (e.g. --chaos none)")
    fleet.add_argument("--max-batch", type=int, default=8,
                       help="continuous scheduler: max requests "
                            "sharing each replica's running batch")
    fleet.add_argument("--windows", type=int, default=64,
                       help="time windows in the exported series")
    fleet.add_argument("--json", default="",
                       help="write the machine-readable fleet report "
                            "here")
    fleet.add_argument("--html", default="",
                       help="write a self-contained HTML dashboard "
                            "here")

    experiment = commands.add_parser(
        "experiment", help="run experiment drivers (paper tables and "
                           "figures)")
    experiment.add_argument("ids", nargs="*",
                            help="experiment ids, e.g. fig10 tab4; "
                                 "empty runs everything")
    experiment.add_argument("--list", action="store_true",
                            help="list available experiment ids")
    experiment.add_argument("--csv-dir", default="",
                            help="also export each result as CSV here")
    return parser


def _cmd_models() -> int:
    for name in sorted(MODEL_ZOO):
        print(MODEL_ZOO[name].describe())
    return 0


def _cmd_systems() -> int:
    for name in sorted(SYSTEM_ZOO):
        system = SYSTEM_ZOO[name]
        gpus = (system.gpu.name if system.n_gpus == 1
                else f"{system.n_gpus}x {system.gpu.name}")
        print(f"{name:>10}: {system.cpu.name} + {gpus} over "
              f"{system.host_link.name}  "
              f"(${system.price_usd:,.0f}, {system.tdp_watts:.0f} W)")
    print(f"\nCPUs: {', '.join(sorted(CPU_ZOO))}")
    print(f"GPUs: {', '.join(sorted(GPU_ZOO))}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    spec = get_model(args.model)
    system = get_system(args.system)
    config = LiaConfig(enforce_host_capacity=args.enforce_memory)
    if args.cxl:
        system = system.with_cxl(n_expanders=2)
        config = config.with_cxl_weights()
    estimator = LiaEstimator(spec, system, config)
    request = InferenceRequest(args.batch, args.input_len,
                               args.output_len)
    estimate = estimator.estimate(request)
    print(f"{spec.name} on {system.name}, B={args.batch}, "
          f"L_in={args.input_len}, L_out={args.output_len}")
    print(f"  prefill policy : {estimate.prefill_policy}")
    print(f"  decode policy  : {estimate.decode_policy}")
    print(f"  GPU-resident   : {estimate.residency.n_resident_layers}/"
          f"{estimate.residency.n_layers} layers")
    print(f"  latency        : {estimate.latency:.3f} s/query")
    print(f"  throughput     : {estimate.throughput:.2f} tokens/s")
    print(f"  host memory    : DDR {estimate.memory.ddr_bytes / 2**30:.1f}"
          f" GiB, CXL {estimate.memory.cxl_bytes / 2**30:.1f} GiB")
    breakdown = estimate.total
    print(f"  busy time      : CPU {breakdown.cpu_compute:.2f} s, GPU "
          f"{breakdown.gpu_compute:.2f} s, PCIe "
          f"{breakdown.transfer:.2f} s")
    return 0


def _cmd_policy_map(args: argparse.Namespace) -> int:
    spec = get_model(args.model)
    system = get_system(args.system)
    config = LiaConfig(enforce_host_capacity=False)
    stage = Stage(args.stage)
    header = "   B\\L " + "".join(f"{length:>22}" for length in args.lengths)
    print(f"{spec.name} on {system.name}, {stage.value} stage")
    print(header)
    for batch in args.batches:
        cells = []
        for length in args.lengths:
            decision = optimal_policy(spec, stage, batch, length,
                                      system, config)
            cells.append(str(decision.policy))
        print(f"{batch:>6} " + "".join(f"{c:>22}" for c in cells))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.core.cache import cache_stats, clear_caches
    from repro.experiments.parallel import KernelCall, default_processes
    from repro.experiments.runner import default_workers, run_sweep

    spec = get_model(args.model)
    system = get_system(args.system)
    config = LiaConfig(enforce_host_capacity=False,
                       decode_eval=args.decode_eval)
    clear_caches()
    points = [(batch, input_len, output_len)
              for batch in args.batches
              for input_len in args.input_lens
              for output_len in args.output_lens]
    workers = (default_workers() if args.workers is None
               else args.workers)
    processes = (default_processes() if args.processes is None
                 else args.processes)
    # Every mode runs the same registered kernel, so serial, thread,
    # and process sweeps print bit-identical rows.
    estimates = run_sweep(
        KernelCall("estimate", (spec.name, system.name, config)),
        points, workers=workers, processes=processes)
    executor = (f"{processes} processes" if processes
                else f"{workers} workers")
    print(f"{spec.name} on {system.name}: {len(points)} grid points, "
          f"{executor}, decode_eval={args.decode_eval}")
    print(f"{'B':>6} {'L_in':>6} {'L_out':>6} {'latency_s':>12} "
          f"{'tokens_per_s':>14}  policy (prefill/decode)")
    rows = []
    for (batch, input_len, output_len), estimate in zip(points,
                                                        estimates):
        print(f"{batch:>6} {input_len:>6} "
              f"{output_len:>6} {estimate.latency:>12.4f} "
              f"{estimate.throughput:>14.2f}  "
              f"{estimate.prefill_policy}/{estimate.decode_policy}")
        rows.append({"batch_size": batch,
                     "input_len": input_len,
                     "output_len": output_len,
                     "latency_s": estimate.latency,
                     "tokens_per_s": estimate.throughput,
                     "prefill_policy": str(estimate.prefill_policy),
                     "decode_policy": str(estimate.decode_policy)})
    for stats in cache_stats():
        print(f"cache {stats['cache']}: {stats['size']} entries, "
              f"{stats['hits']} hits / {stats['misses']} misses "
              f"(hit rate {stats['hit_rate']:.1%})")
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump({"model": spec.name, "system": system.name,
                       "decode_eval": args.decode_eval, "rows": rows},
                      handle, indent=2)
        print(f"wrote {args.json}")
    return 0


def _trace_metrics_path(out: str) -> str:
    if out.endswith(".trace.json"):
        return out[:-len(".trace.json")] + ".metrics.json"
    if out.endswith(".json"):
        return out[:-len(".json")] + ".metrics.json"
    return out + ".metrics.json"


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.telemetry import (Telemetry, activate, render_metrics,
                                 write_chrome_trace, write_metrics_json)

    spec = get_model(args.model)
    system = get_system(args.system)
    config = LiaConfig(enforce_host_capacity=False)
    telemetry = Telemetry()
    extra_events: List[dict] = []
    metadata = {"mode": args.mode, "model": spec.name,
                "system": system.name, "batch": args.batch,
                "input_len": args.input_len,
                "output_len": args.output_len}

    with activate(telemetry):
        if args.mode == "engine":
            import numpy as np

            from repro.inference.engine import CooperativeEngine
            from repro.inference.transformer import TinyTransformer

            if spec.total_param_bytes > 2 ** 30:
                raise ConfigurationError(
                    f"{spec.name} is too large for the functional "
                    "engine; trace a tiny spec (e.g. opt-tiny, "
                    "llama-tiny) or use --mode serving/schedule")
            from repro.core.policy import OffloadPolicy

            def stage_policy(spelled: str, stage: Stage) -> OffloadPolicy:
                if spelled == "auto":
                    return optimal_policy(spec, stage, args.batch,
                                          args.input_len, system,
                                          config).policy
                return OffloadPolicy.from_string(spelled)

            prefill = stage_policy(args.prefill_policy, Stage.PREFILL)
            decode = stage_policy(args.decode_policy, Stage.DECODE)
            metadata["prefill_policy"] = str(prefill)
            metadata["decode_policy"] = str(decode)
            model = TinyTransformer(spec, seed=args.seed)
            engine = CooperativeEngine(model, prefill, decode)
            prompt = (np.arange(args.batch * args.input_len)
                      % spec.vocab_size).reshape(args.batch,
                                                 args.input_len)
            result = engine.generate(prompt,
                                     max_new_tokens=args.output_len)
            metadata["pcie_bytes"] = result.pcie_bytes
            print(f"generated {result.tokens.size} tokens; "
                  f"{result.pcie_bytes} PCIe bytes over "
                  f"{len(result.transfers.records)} transfers")
        elif args.mode == "serving":
            from repro.serving.simulator import ServingSimulator

            simulator = ServingSimulator(LiaEstimator(spec, system,
                                                      config))
            requests = [InferenceRequest(args.batch, args.input_len,
                                         args.output_len)
                        for __ in range(args.requests)]
            report = simulator.run_poisson(requests,
                                           rate_per_s=args.rate,
                                           seed=args.seed)
            metadata["makespan_s"] = report.makespan
            print(f"served {len(report.served)} requests in "
                  f"{report.makespan:.3f} s "
                  f"(utilization {report.utilization:.1%})")
        else:  # schedule
            from repro.core.overlap import build_stage_graph
            from repro.sim.engine import simulate

            decision = optimal_policy(spec, Stage.DECODE, args.batch,
                                      args.input_len, system, config)
            graph = build_stage_graph(decision.layer,
                                      n_layers=spec.n_layers)
            timeline = simulate(graph)
            extra_events = timeline.to_trace_events()
            for resource in graph.resources():
                telemetry.metrics.gauge(
                    "sim.utilization", resource=resource).set(
                        timeline.utilization(resource))
            metadata["makespan_s"] = timeline.makespan
            print(f"simulated {len(timeline)} tasks; makespan "
                  f"{timeline.makespan * 1e3:.3f} ms")

    trace_path = write_chrome_trace(args.out, telemetry.tracer.spans,
                                    extra_events=extra_events,
                                    metadata=metadata)
    metrics_path = write_metrics_json(
        _trace_metrics_path(args.out), telemetry.metrics,
        title=f"{args.mode} trace of {spec.name} on {system.name}")
    print(f"wrote {trace_path} (open in https://ui.perfetto.dev or "
          "chrome://tracing)")
    print(f"wrote {metrics_path}")
    print(render_metrics(telemetry.metrics))
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults import builtin_scenarios, get_scenario, load_scenario
    from repro.serving.simulator import ServingSimulator
    from repro.telemetry import (Telemetry, activate, write_chrome_trace,
                                 write_metrics_json)

    if args.list_presets:
        for name, scenario in sorted(builtin_scenarios().items()):
            kinds = ", ".join(sorted({e.kind.value
                                      for e in scenario.events}))
            extras = []
            if scenario.admission.enabled:
                extras.append(f"admission depth "
                              f"{scenario.admission.max_queue_depth}")
            print(f"{name:>16}: {kinds or 'no fault windows'}"
                  + (f" ({'; '.join(extras)})" if extras else ""))
        return 0
    if args.scenario and args.preset:
        raise ConfigurationError(
            "--scenario and --preset are mutually exclusive")
    scenario = None
    if args.scenario:
        scenario = load_scenario(args.scenario)
    elif args.preset:
        scenario = get_scenario(args.preset)

    spec = get_model(args.model)
    system = get_system(args.system)
    config = LiaConfig(enforce_host_capacity=False)
    telemetry = Telemetry() if args.out else None
    simulator = ServingSimulator(LiaEstimator(spec, system, config),
                                 telemetry=telemetry)
    requests = [InferenceRequest(args.batch, args.input_len,
                                 args.output_len)
                for __ in range(args.requests)]
    if telemetry is not None:
        with activate(telemetry):
            report = simulator.run_poisson(requests, rate_per_s=args.rate,
                                           seed=args.seed,
                                           scenario=scenario)
    else:
        report = simulator.run_poisson(requests, rate_per_s=args.rate,
                                       seed=args.seed, scenario=scenario)

    name = scenario.name if scenario is not None else "(fault-free)"
    print(f"{spec.name} on {system.name}, scenario {name}: "
          f"{len(report.served)}/{args.requests} served")
    if report.served:
        print(f"  p50 latency  : {report.latency_percentile(0.50):.3f} s")
        print(f"  p95 latency  : {report.latency_percentile(0.95):.3f} s")
        print(f"  p99 latency  : {report.latency_percentile(0.99):.3f} s")
        print(f"  makespan     : {report.makespan:.3f} s "
              f"(utilization {report.utilization:.1%})")
    dropped = getattr(report, "dropped", [])
    stats = getattr(report, "stats", None)
    if stats is not None:
        print(f"  dropped      : {len(dropped)} "
              f"({report.drop_rate:.1%} of offered)")
        print(f"  fault events : {stats.total_faults} total")
        for key, value in stats.as_dict().items():
            if value:
                print(f"    {key:<18}: {value:g}")

    if args.out:
        metadata = {"mode": "faults", "model": spec.name,
                    "system": system.name, "scenario": name,
                    "served": len(report.served),
                    "dropped": len(dropped)}
        trace_path = write_chrome_trace(args.out,
                                        telemetry.tracer.spans,
                                        metadata=metadata)
        metrics_path = write_metrics_json(
            _trace_metrics_path(args.out), telemetry.metrics,
            title=f"fault scenario {name} of {spec.name} "
                  f"on {system.name}")
        print(f"wrote {trace_path}")
        print(f"wrote {metrics_path}")
    if args.json:
        import json

        from repro.faults import scenario_to_dict

        payload = {
            "model": spec.name, "system": system.name,
            "scenario": (scenario_to_dict(scenario)
                         if scenario is not None else None),
            "arrival_seed": args.seed, "rate_per_s": args.rate,
            "served": [{"batch_size": r.request.batch_size,
                        "input_len": r.request.input_len,
                        "output_len": r.request.output_len,
                        "arrival": r.arrival, "start": r.start,
                        "finish": r.finish}
                       for r in report.served],
            "dropped": [{"arrival": d.arrival, "reason": d.reason}
                        for d in dropped],
            "percentiles": ({"p50": report.latency_percentile(0.50),
                             "p95": report.latency_percentile(0.95),
                             "p99": report.latency_percentile(0.99)}
                            if report.served else None),
            "fault_stats": stats.as_dict() if stats is not None else None,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


_SERVE_DEFAULT_SHAPES = ((1, 128, 16), (1, 256, 32), (1, 512, 32),
                         (8, 256, 32))


def _parse_shape(spelled: str) -> InferenceRequest:
    parts = spelled.split(",")
    if len(parts) != 3:
        raise ConfigurationError(
            f"--shape wants B,L_IN,L_OUT, got {spelled!r}")
    try:
        batch, input_len, output_len = (int(part) for part in parts)
    except ValueError:
        raise ConfigurationError(
            f"--shape wants three integers, got {spelled!r}") from None
    return InferenceRequest(batch, input_len, output_len)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serving import (MultiReplicaSimulator, WorkloadVector,
                               plan_replicas)

    spec = get_model(args.model)
    system = get_system(args.system)
    config = LiaConfig(enforce_host_capacity=False)
    shapes = ([_parse_shape(spelled) for spelled in args.shape]
              or [InferenceRequest(*shape)
                  for shape in _SERVE_DEFAULT_SHAPES])
    workload = WorkloadVector.sample_mix(shapes, args.num_requests,
                                         seed=args.seed)
    streaming = True if args.streaming else None

    if args.scheduler == "continuous":
        return _serve_continuous(args, spec, system, config, shapes,
                                 workload)

    if args.slo_p95 > 0.0:
        plan, report = plan_replicas(
            spec, workload, args.slo_p95, system_name=args.system,
            arrival_rate_per_s=args.rate, config=config,
            seed=args.seed, dispatch=args.dispatch)
        n_replicas = plan.n_replicas
        print(f"{spec.name} on {system.name}: smallest {args.dispatch} "
              f"fleet meeting p95 <= {args.slo_p95:g} s is "
              f"{n_replicas} replica(s) at ${plan.usd_per_hour:.2f}/h")
    else:
        n_replicas = args.replicas
        simulator = MultiReplicaSimulator(
            LiaEstimator(spec, system, config), n_replicas,
            dispatch=args.dispatch)
        report = simulator.run_poisson(workload, args.rate,
                                       seed=args.seed,
                                       streaming=streaming)

    mode = "streaming" if args.streaming else "exact"
    print(f"served {report.n_served:,} requests on {n_replicas} "
          f"replica(s), {args.dispatch} dispatch "
          f"({mode} percentiles)")
    p50 = report.latency_percentile(0.50)
    p95 = report.latency_percentile(0.95)
    p99 = report.latency_percentile(0.99)
    print(f"  p50/p95/p99  : {p50:.3f} / {p95:.3f} / {p99:.3f} s")
    print(f"  queue delay  : {report.mean_queue_delay:.3f} s mean")
    print(f"  makespan     : {report.makespan:.3f} s "
          f"(fleet utilization {report.utilization:.1%})")
    print(f"  throughput   : {report.throughput_tokens_per_s:.2f} "
          f"tokens/s")
    per_replica = ", ".join(
        f"[{replica}] {utilization:.1%}"
        for replica, utilization in zip(report.replica_ids,
                                        report.replica_utilizations))
    if n_replicas > 1:
        print(f"  per-replica  : {per_replica}")

    if args.json:
        import json

        payload = {
            "model": spec.name, "system": system.name,
            "num_requests": args.num_requests, "rate_per_s": args.rate,
            "seed": args.seed, "replicas": n_replicas,
            "dispatch": args.dispatch, "streaming": bool(args.streaming),
            "shapes": [[request.batch_size, request.input_len,
                        request.output_len] for request in shapes],
            "slo_p95_s": args.slo_p95 or None,
            "percentiles": {"p50": p50, "p95": p95, "p99": p99},
            "mean_queue_delay_s": report.mean_queue_delay,
            "makespan_s": report.makespan,
            "utilization": report.utilization,
            "throughput_tokens_per_s": report.throughput_tokens_per_s,
            "replica_utilizations": dict(
                zip(map(str, report.replica_ids),
                    report.replica_utilizations)),
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


def _serve_continuous(args: argparse.Namespace, spec, system, config,
                      shapes, workload) -> int:
    from repro.cxl.residency import KvTierCapacities
    from repro.serving import run_continuous_fleet
    from repro.serving.scheduler import SchedulerConfig
    from repro.serving.simulator import arrivals_poisson

    if args.slo_p95 > 0.0:
        raise ConfigurationError(
            "--slo-p95 fleet sizing runs on the FIFO engines; drop "
            "it with --scheduler continuous")
    if args.streaming:
        raise ConfigurationError(
            "--streaming applies to the vectorized FIFO engine; the "
            "continuous scheduler materializes its report")

    kv_capacities = None
    if (args.kv_hbm_gb > 0.0 or args.kv_ddr_gb > 0.0
            or args.kv_cxl_gb > 0.0):
        kv_capacities = KvTierCapacities(
            hbm_bytes=args.kv_hbm_gb * 1e9,
            ddr_bytes=args.kv_ddr_gb * 1e9,
            cxl_bytes=args.kv_cxl_gb * 1e9)
    scheduler_config = SchedulerConfig(
        max_batch_requests=args.max_batch, join=args.join,
        kv_capacities=kv_capacities,
        kv_unbounded=bool(args.kv_unbounded))
    estimator = LiaEstimator(spec, system, config)
    arrivals = arrivals_poisson(args.num_requests, args.rate,
                                seed=args.seed)
    report = run_continuous_fleet(estimator, workload, arrivals,
                                  args.replicas,
                                  scheduler_config=scheduler_config)

    mode = ("fifo-degenerate"
            if scheduler_config.is_fifo_degenerate else args.join)
    print(f"served {len(report.served):,} requests on "
          f"{args.replicas} replica(s), continuous batching "
          f"(max batch {args.max_batch}, join {mode})")
    p50 = report.latency_percentile(0.50)
    p95 = report.latency_percentile(0.95)
    p99 = report.latency_percentile(0.99)
    print(f"  p50/p95/p99  : {p50:.3f} / {p95:.3f} / {p99:.3f} s")
    print(f"  queue delay  : {report.mean_queue_delay:.3f} s mean")
    print(f"  makespan     : {report.makespan:.3f} s "
          f"(utilization {report.utilization:.1%})")
    print(f"  throughput   : {report.throughput_tokens_per_s:.2f} "
          f"tokens/s")
    print(f"  batching     : {report.iterations:,} iterations, "
          f"occupancy {report.occupancy_mean:.2f} mean / "
          f"{report.occupancy_peak} peak, "
          f"{report.policy_resolves} policy re-solves")
    kv_line = ", ".join(f"{tier} {peak / 1e9:.2f} GB"
                        for tier, peak
                        in report.kv_peak_bytes.items())
    print(f"  kv peak      : {kv_line}; "
          f"{report.kv_demotions} demotion(s)")

    if args.json:
        import json

        payload = {
            "model": spec.name, "system": system.name,
            "num_requests": args.num_requests, "rate_per_s": args.rate,
            "seed": args.seed, "replicas": args.replicas,
            "scheduler": "continuous",
            "shapes": [[request.batch_size, request.input_len,
                        request.output_len] for request in shapes],
            "percentiles": {"p50": p50, "p95": p95, "p99": p99},
            "mean_queue_delay_s": report.mean_queue_delay,
            "makespan_s": report.makespan,
            "utilization": report.utilization,
            "throughput_tokens_per_s": report.throughput_tokens_per_s,
            "batching": {
                "max_batch_requests": args.max_batch,
                "join": args.join,
                "fifo_degenerate":
                    scheduler_config.is_fifo_degenerate,
                "iterations": report.iterations,
                "admissions": report.admissions,
                "occupancy_mean": report.occupancy_mean,
                "occupancy_peak": report.occupancy_peak,
                "policy_resolves": report.policy_resolves,
                "kv_peak_bytes": report.kv_peak_bytes,
                "kv_demotions": report.kv_demotions,
            },
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro.serving import MultiReplicaSimulator, WorkloadVector
    from repro.serving.simulator import ServingSimulator
    from repro.telemetry import (SLOPolicy, Telemetry, activate,
                                 evaluate_slo, fleet_timeseries,
                                 monitor_report,
                                 timeseries_to_counter_events,
                                 write_chrome_trace,
                                 write_dashboard_html,
                                 write_timeseries_csv)

    if args.preset and args.replicas > 1:
        raise ConfigurationError(
            "--preset runs the single-server degraded loop; "
            "use --replicas 1 with it")
    spec = get_model(args.model)
    system = get_system(args.system)
    config = LiaConfig(enforce_host_capacity=False)
    estimator = LiaEstimator(spec, system, config)
    shapes = ([_parse_shape(spelled) for spelled in args.shape]
              or [InferenceRequest(*shape)
                  for shape in _SERVE_DEFAULT_SHAPES])
    workload = WorkloadVector.sample_mix(shapes, args.num_requests,
                                         seed=args.seed)

    scenario = None
    telemetry = Telemetry()
    with activate(telemetry):
        if args.preset:
            from repro.faults import get_scenario

            scenario = get_scenario(args.preset)
            report = ServingSimulator(estimator).run_poisson(
                workload, args.rate, seed=args.seed,
                scenario=scenario)
        elif args.replicas > 1:
            report = MultiReplicaSimulator(
                estimator, args.replicas,
                dispatch=args.dispatch).run_poisson(
                    workload, args.rate, seed=args.seed)
        else:
            report = ServingSimulator(estimator).run_poisson(
                workload, args.rate, seed=args.seed)

    threshold = args.slo_threshold
    auto_threshold = threshold <= 0.0
    if auto_threshold:
        threshold = 1.25 * report.latency_percentile(0.95)
    policy = SLOPolicy(latency_threshold_s=threshold,
                       error_budget=args.error_budget,
                       long_window_s=args.long_window,
                       short_window_s=args.short_window,
                       burn_rate_threshold=args.burn_threshold)

    fleet = None
    if args.replicas > 1:
        fleet = fleet_timeseries(report, n_windows=args.windows)
        monitoring = evaluate_slo(fleet.merged, policy)
    else:
        monitoring = monitor_report(report, policy,
                                    n_windows=args.windows)
    series = monitoring.timeseries

    source = "auto: 1.25 x p95" if auto_threshold else "given"
    served = int(series.finished.sum())
    print(f"monitored {served:,} requests on {spec.name} / "
          f"{system.name} over {series.n_windows} windows of "
          f"{series.grid.window_s:.1f} s")
    if scenario is not None:
        print(f"  scenario     : {scenario.name} "
              f"({len(scenario.events)} fault window(s))")
    print(f"  SLO threshold: {threshold:.3f} s ({source}), budget "
          f"{policy.error_budget:.1%}, alert at "
          f"{policy.burn_rate_threshold:g}x burn")
    print(f"  bad requests : {monitoring.total_bad:,} "
          f"({monitoring.bad_fraction:.2%}) -> "
          f"{monitoring.budget_spent:.0%} of budget")
    print(f"  alerts       : {len(monitoring.alerts)}")
    for alert in monitoring.alerts:
        detail = alert.cause
        primary = alert.attributions[0] if alert.attributions else None
        if primary is not None and primary.cause != "organic-load":
            detail += (f" (overlap {primary.overlap_s:.1f} s, "
                       f"magnitude {primary.magnitude:g})")
        print(f"    [{alert.start_s:9.1f} - {alert.end_s:9.1f}] s  "
              f"burn {alert.peak_burn_long:.1f}x/"
              f"{alert.peak_burn_short:.1f}x  "
              f"bad {alert.n_bad}/{alert.n_requests}  {detail}")

    metadata = {"model": spec.name, "system": system.name,
                "num_requests": args.num_requests,
                "rate_per_s": args.rate, "seed": args.seed,
                "replicas": args.replicas,
                "scenario": args.preset or None}
    if args.out:
        path = write_chrome_trace(
            args.out, telemetry.tracer.spans,
            extra_events=timeseries_to_counter_events(series),
            metadata={key: value for key, value in metadata.items()
                      if value is not None})
        print(f"wrote {path} (open in https://ui.perfetto.dev or "
              "chrome://tracing)")
    if args.csv:
        path = write_timeseries_csv(
            args.csv, series, monitoring=monitoring,
            title=f"{spec.name} on {system.name}")
        print(f"wrote {path}")
    if args.html:
        path = write_dashboard_html(
            args.html, monitoring, fleet=fleet,
            title=f"{spec.name} on {system.name}",
            metadata=metadata)
        print(f"wrote {path}")
    if args.json:
        import json

        payload = dict(metadata)
        payload.update({
            "windows": series.n_windows,
            "window_s": series.grid.window_s,
            "slo_threshold_s": threshold,
            "slo_threshold_auto": auto_threshold,
            "monitoring": monitoring.to_dict(),
            "series": series.to_dict(),
        })
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    import os

    from repro.energy.cost import CostModel
    from repro.faults.fleet import (builtin_fleet_scenarios,
                                    get_fleet_scenario,
                                    load_fleet_scenario)
    from repro.serving import WorkloadVector, builtin_fleet_presets, \
        get_fleet_preset
    from repro.workloads import builtin_traces, get_trace, load_trace

    if args.list_presets:
        for name, preset in builtin_fleet_presets().items():
            mode = ("autoscale" if preset.autoscaler is not None
                    else f"{preset.n_replicas} replicas")
            print(f"{name}: trace={preset.trace.name} "
                  f"chaos={preset.chaos.name} {mode}, "
                  f"{preset.dispatch}")
        print(f"traces: {', '.join(sorted(builtin_traces()))}")
        print("chaos scenarios: "
              f"{', '.join(sorted(builtin_fleet_scenarios()))}")
        return 0

    preset = get_fleet_preset(args.preset)
    trace_spec = preset.trace
    if args.trace:
        trace_spec = (load_trace(args.trace)
                      if os.path.exists(args.trace)
                      else get_trace(args.trace))
    chaos = preset.chaos
    if args.chaos:
        chaos = (load_fleet_scenario(args.chaos)
                 if os.path.exists(args.chaos)
                 else get_fleet_scenario(args.chaos))
    if args.num_requests > 0:
        trace_spec = trace_spec.scaled(args.num_requests)
    n_replicas = args.replicas or preset.n_replicas

    spec = get_model(args.model)
    system = get_system(args.system)
    estimator = LiaEstimator(spec, system,
                             LiaConfig(enforce_host_capacity=False))
    shapes = ([_parse_shape(spelled) for spelled in args.shape]
              or [InferenceRequest(*shape)
                  for shape in _SERVE_DEFAULT_SHAPES])
    workload = WorkloadVector.sample_mix(
        shapes, trace_spec.n_requests, seed=args.seed)
    arrivals = trace_spec.generate()

    if args.scheduler == "continuous":
        if not chaos.idle:
            raise ConfigurationError(
                f"the continuous scheduler has no chaos-injected "
                f"variant yet; scenario {chaos.name!r} is not idle "
                "(pass --chaos none)")
        return _fleet_continuous(args, spec, system, estimator,
                                 trace_spec, chaos, workload,
                                 arrivals, n_replicas)

    from repro.serving import FleetSimulator

    simulator = FleetSimulator(
        estimator, n_replicas=n_replicas, scenario=chaos,
        autoscaler=preset.autoscaler, dispatch=preset.dispatch)
    report = simulator.run(workload, arrivals)
    stats = report.stats
    usd_per_hour = CostModel(system).usd_per_hour()

    print(f"fleet {args.preset}: {spec.name} on {system.name}, "
          f"trace {trace_spec.name} ({report.n_offered:,} requests), "
          f"chaos {chaos.name}, {preset.dispatch} dispatch")
    print(f"  served/dropped : {report.n_served:,} / "
          f"{report.n_dropped:,} "
          f"(availability {report.availability:.4%})")
    print(f"  failover       : {stats.retries} retries, "
          f"{stats.redispatched} re-dispatched, "
          f"{stats.hedges} hedges ({stats.hedge_wins} won), "
          f"{stats.breaker_ejections} breaker ejection(s)")
    counts = report.replica_counts()
    print(f"  replicas       : start {report.n_replicas_initial}, "
          f"min {int(counts.min())}, max {int(counts.max())}, "
          f"{stats.scale_ups} scale-up(s) / "
          f"{stats.scale_downs} drain decision(s)")
    p50 = report.latency_percentile(0.50)
    p95 = report.latency_percentile(0.95)
    print(f"  p50/p95        : {p50:.3f} / {p95:.3f} s "
          f"(SLO p95 <= {preset.slo_p95_s:g} s)")
    per_class = report.per_class_p95()
    spelled = ", ".join(f"{name}: {value:.2f} s"
                        for name, value in sorted(per_class.items()))
    print(f"  per-class p95  : {spelled}")
    cost = report.cost_per_million_requests(usd_per_hour)
    print(f"  cost           : {report.replica_seconds:,.0f} "
          f"replica-seconds, ${cost:,.2f} per million requests")

    if args.json:
        import json

        payload = {
            "preset": args.preset, "model": spec.name,
            "system": system.name, "trace": trace_spec.name,
            "dispatch": preset.dispatch,
            "n_replicas_initial": report.n_replicas_initial,
            "slo_p95_s": preset.slo_p95_s,
            "p50_s": p50, "p95_s": p95,
            "usd_per_hour_per_replica": usd_per_hour,
            "cost_per_million_requests_usd": cost,
        }
        payload.update(report.to_dict())
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")
    if args.html:
        from repro.telemetry import (SLOPolicy, evaluate_slo,
                                     write_dashboard_html)

        series = report.timeseries(n_windows=args.windows)
        monitoring = evaluate_slo(
            series, SLOPolicy(latency_threshold_s=preset.slo_p95_s))
        path = write_dashboard_html(
            args.html, monitoring,
            title=f"fleet {args.preset}: {spec.name} on "
                  f"{system.name}",
            metadata={"preset": args.preset, "trace": trace_spec.name,
                      "chaos": chaos.name,
                      "availability": f"{report.availability:.4%}"})
        print(f"wrote {path}")
    return 0


def _fleet_continuous(args: argparse.Namespace, spec, system,
                      estimator, trace_spec, chaos, workload,
                      arrivals, n_replicas: int) -> int:
    from repro.energy.cost import CostModel
    from repro.serving import run_continuous_fleet
    from repro.serving.scheduler import SchedulerConfig

    if args.html:
        raise ConfigurationError(
            "--html renders the chaos/autoscaler dashboard; it is "
            "not wired to the continuous scheduler yet")
    scheduler_config = SchedulerConfig(
        max_batch_requests=args.max_batch)
    report = run_continuous_fleet(estimator, workload, arrivals,
                                  n_replicas,
                                  scheduler_config=scheduler_config)
    usd_per_hour = CostModel(system).usd_per_hour()

    print(f"fleet {args.preset}: {spec.name} on {system.name}, "
          f"trace {trace_spec.name} ({len(report.served):,} "
          f"requests), chaos {chaos.name} (idle), continuous "
          f"batching x{n_replicas} replica(s)")
    p50 = report.latency_percentile(0.50)
    p95 = report.latency_percentile(0.95)
    print(f"  p50/p95        : {p50:.3f} / {p95:.3f} s")
    print(f"  batching       : {report.iterations:,} iterations, "
          f"occupancy {report.occupancy_mean:.2f} mean / "
          f"{report.occupancy_peak} peak, "
          f"{report.policy_resolves} policy re-solves")
    print(f"  throughput     : "
          f"{report.throughput_tokens_per_s:.2f} tokens/s over a "
          f"{report.makespan:,.0f} s makespan")
    replica_seconds = report.makespan * n_replicas
    cost = (usd_per_hour / 3600.0) * replica_seconds
    print(f"  cost           : {replica_seconds:,.0f} "
          f"replica-seconds, ${cost:,.2f}")

    if args.json:
        import json

        payload = {
            "preset": args.preset, "model": spec.name,
            "system": system.name, "trace": trace_spec.name,
            "scheduler": "continuous", "chaos": chaos.name,
            "n_replicas_initial": n_replicas,
            "n_offered": len(report.served),
            "n_served": len(report.served), "n_dropped": 0,
            "availability": 1.0,
            "p50_s": p50, "p95_s": p95,
            "makespan_s": report.makespan,
            "throughput_tokens_per_s":
                report.throughput_tokens_per_s,
            "usd_per_hour_per_replica": usd_per_hour,
            "batching": {
                "max_batch_requests": args.max_batch,
                "iterations": report.iterations,
                "occupancy_mean": report.occupancy_mean,
                "occupancy_peak": report.occupancy_peak,
                "policy_resolves": report.policy_resolves,
                "kv_peak_bytes": report.kv_peak_bytes,
                "kv_demotions": report.kv_demotions,
            },
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.export import default_drivers, to_csv

    drivers = default_drivers()
    if args.list:
        print("\n".join(sorted(drivers)))
        return 0
    selected = args.ids or sorted(drivers)
    unknown = [name for name in selected if name not in drivers]
    if unknown:
        print(f"unknown experiment ids: {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    for name in selected:
        result = drivers[name]()
        print(result.render())
        print()
        if args.csv_dir:
            path = to_csv(result, f"{args.csv_dir}/{name}.csv")
            print(f"  wrote {path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "models":
            return _cmd_models()
        if args.command == "systems":
            return _cmd_systems()
        if args.command == "plan":
            return _cmd_plan(args)
        if args.command == "policy-map":
            return _cmd_policy_map(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "calibrate":
            from repro.validation import calibration_ok, render_report
            print(render_report())
            return 0 if calibration_ok() else 1
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "faults":
            return _cmd_faults(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "monitor":
            return _cmd_monitor(args)
        if args.command == "fleet":
            return _cmd_fleet(args)
        if args.command == "experiment":
            return _cmd_experiment(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    raise AssertionError("unreachable")


if __name__ == "__main__":
    raise SystemExit(main())
