"""Unit helpers and constants used throughout the library.

All internal computations use SI base units: bytes, seconds, FLOP, watts.
The helpers below exist so that hardware specifications can be written in
the units vendors quote (GB/s, TFLOPS, ns, GHz) without sprinkling powers
of ten through the code.
"""

from __future__ import annotations

# Decimal prefixes (vendors quote bandwidth and FLOPS in decimal units).
KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12

# Binary prefixes (memory capacities are quoted in binary units).
KIB = 1024
MIB = 1024**2
GIB = 1024**3
TIB = 1024**4

#: Bytes per element for the numeric formats that appear in the paper.
BYTES_PER_BF16 = 2
BYTES_PER_FP16 = 2
BYTES_PER_FP32 = 4
BYTES_PER_INT8 = 1

#: Seconds in an hour, used by the cost model.
SECONDS_PER_HOUR = 3600.0
HOURS_PER_YEAR = 24.0 * 365.0


def gb_per_s(value: float) -> float:
    """Convert a bandwidth quoted in GB/s to bytes/second."""
    return value * GIGA


def mb(value: float) -> float:
    """Convert a size quoted in decimal megabytes to bytes."""
    return value * MEGA


def gib(value: float) -> float:
    """Convert a capacity quoted in GiB to bytes."""
    return value * GIB


def tflops(value: float) -> float:
    """Convert a throughput quoted in TFLOPS to FLOP/second."""
    return value * TERA


def gflops(value: float) -> float:
    """Convert a throughput quoted in GFLOPS to FLOP/second."""
    return value * GIGA


def ghz(value: float) -> float:
    """Convert a frequency quoted in GHz to Hz."""
    return value * GIGA


def ns(value: float) -> float:
    """Convert a latency quoted in nanoseconds to seconds."""
    return value * 1e-9


def us(value: float) -> float:
    """Convert a latency quoted in microseconds to seconds."""
    return value * 1e-6


def ms(value: float) -> float:
    """Convert a latency quoted in milliseconds to seconds."""
    return value * 1e-3


def to_gib(num_bytes: float) -> float:
    """Express a byte count in GiB (for reporting)."""
    return num_bytes / GIB


def to_gb(num_bytes: float) -> float:
    """Express a byte count in decimal GB (for reporting)."""
    return num_bytes / GIGA


def to_tflops(flops_per_s: float) -> float:
    """Express a FLOP/s rate in TFLOPS (for reporting)."""
    return flops_per_s / TERA


def to_gflops(flops_per_s: float) -> float:
    """Express a FLOP/s rate in GFLOPS (for reporting)."""
    return flops_per_s / GIGA
