"""repro — a full reproduction of *LIA: A Single-GPU LLM Inference
Acceleration with Cooperative AMX-Enabled CPU-GPU Computation and CXL
Offloading* (Kim et al., ISCA 2025).

Quick start::

    from repro import LiaRuntime, get_model, get_system, make_request

    runtime = LiaRuntime(get_model("opt-175b"), get_system("spr-h100"))
    plan = runtime.plan(make_request(batch_size=1, input_len=256,
                                     output_len=32))
    print(plan.prefill_policy, plan.decode_policy)
    print(f"{plan.estimate.latency:.2f} s/query")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core import (
    FULL_CPU,
    FULL_GPU,
    PARTIAL_CPU,
    InferenceEstimate,
    LiaConfig,
    LiaEstimator,
    LiaRuntime,
    OffloadPolicy,
    layer_latency,
    optimal_policy,
    policy_map,
)
from repro.hardware import get_cpu, get_gpu, get_link, get_system
from repro.models import (
    Stage,
    Sublayer,
    get_model,
    list_models,
    make_request,
    ops_per_byte_heatmap,
)
from repro.telemetry import Telemetry, activate

__version__ = "1.0.0"

__all__ = [
    "FULL_CPU",
    "FULL_GPU",
    "PARTIAL_CPU",
    "InferenceEstimate",
    "LiaConfig",
    "LiaEstimator",
    "LiaRuntime",
    "OffloadPolicy",
    "layer_latency",
    "optimal_policy",
    "policy_map",
    "get_cpu",
    "get_gpu",
    "get_link",
    "get_system",
    "Stage",
    "Sublayer",
    "get_model",
    "list_models",
    "make_request",
    "ops_per_byte_heatmap",
    "Telemetry",
    "activate",
    "__version__",
]
