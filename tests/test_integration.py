"""Cross-module integration tests: the public API working end to end."""

import numpy as np
import pytest

from repro import (
    FULL_CPU,
    LiaConfig,
    LiaEstimator,
    LiaRuntime,
    get_model,
    get_system,
    make_request,
)
from repro.errors import ConfigurationError


def test_readme_quickstart_snippet():
    runtime = LiaRuntime(get_model("opt-175b"), get_system("spr-h100"),
                         LiaConfig(enforce_host_capacity=False))
    plan = runtime.plan(make_request(batch_size=1, input_len=256,
                                     output_len=32))
    assert plan.prefill_policy == FULL_CPU
    assert plan.decode_policy == FULL_CPU
    assert plan.estimate.latency > 0.0


def test_functional_runtime_llama_tiny():
    """LiaRuntime drives the GQA/SwiGLU functional model end to end."""
    runtime = LiaRuntime(get_model("llama-tiny"),
                         get_system("spr-a100"))
    prompt = np.arange(12, dtype=np.int64).reshape(2, 6) % 100
    result = runtime.generate(prompt, max_new_tokens=3)
    assert result.tokens.shape == (2, 3)


def test_every_zoo_model_estimates_on_every_single_gpu_system():
    """No (model, system) pair crashes the estimator."""
    config = LiaConfig(enforce_host_capacity=False)
    request = make_request(4, 64, 4)
    for system_name in ("spr-a100", "spr-h100", "gnr-a100", "gnr-h100",
                        "gh200"):
        system = get_system(system_name)
        for model_name in ("opt-6.7b", "opt-13b", "opt-30b", "opt-66b",
                           "opt-175b", "llama2-70b", "chinchilla-70b",
                           "bloom-176b", "opt-moe-8x30b"):
            estimate = LiaEstimator(get_model(model_name), system,
                                    config).estimate(request)
            assert estimate.latency > 0.0
            assert estimate.throughput > 0.0


def test_estimates_scale_sanely_across_model_sizes():
    """Bigger models are slower at the same operating point."""
    config = LiaConfig(enforce_host_capacity=False)
    system = get_system("spr-a100")
    request = make_request(1, 256, 16)
    latencies = [
        LiaEstimator(get_model(name), system, config).estimate(
            request).latency
        for name in ("opt-6.7b", "opt-30b", "opt-66b", "opt-175b")]
    assert latencies == sorted(latencies)


def test_cli_and_library_agree():
    """The CLI's plan output reflects the same estimate the library
    produces."""
    import re

    from repro.cli import main

    config = LiaConfig(enforce_host_capacity=False)
    estimate = LiaEstimator(get_model("opt-30b"),
                            get_system("spr-a100"),
                            config).estimate(make_request(1, 128, 8))
    import io
    import contextlib

    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        assert main(["plan", "--model", "opt-30b", "--system",
                     "spr-a100", "--batch", "1", "--input-len", "128",
                     "--output-len", "8"]) == 0
    match = re.search(r"latency\s*:\s*([0-9.]+)", buffer.getvalue())
    assert match is not None
    assert float(match.group(1)) == pytest.approx(estimate.latency,
                                                  abs=0.002)


def test_export_then_reload_csv(tmp_path):
    """Exports are loadable and match the in-memory rows."""
    import csv

    from repro.experiments import fig01_opsbyte
    from repro.experiments.export import to_csv

    result = fig01_opsbyte.run()
    path = to_csv(result, tmp_path / "fig01.csv")
    with path.open() as handle:
        handle.readline()  # comment
        rows = list(csv.DictReader(handle))
    assert len(rows) == len(result.rows)
    assert rows[0]["sublayer"] == result.rows[0]["sublayer"]
