"""Calibration self-check."""

from repro.validation import (
    CalibrationCheck,
    calibration_ok,
    render_report,
    run_calibration,
)


def test_every_anchor_in_band():
    failing = [check for check in run_calibration() if not check.ok]
    assert not failing, "\n".join(check.render() for check in failing)


def test_calibration_ok_flag():
    assert calibration_ok()


def test_report_mentions_sections():
    report = render_report()
    assert "SPR-AMX" in report
    assert "anchors in band" in report


def test_check_band_logic():
    good = CalibrationCheck("x", 1.0, 1.05, 0.9, 1.1)
    bad = CalibrationCheck("x", 1.0, 1.5, 0.9, 1.1)
    assert good.ok and not bad.ok
    assert "FAIL" in bad.render()
    assert "ok" in good.render()


def test_anchors_cover_all_calibration_surfaces():
    names = " ".join(check.name for check in run_calibration())
    for keyword in ("AMX", "GEMV", "DDR", "CXL", "PCIe", "threshold"):
        assert keyword in names


def test_cli_calibrate(capsys):
    from repro.cli import main

    assert main(["calibrate"]) == 0
    out = capsys.readouterr().out
    assert "17/17" in out or "anchors in band" in out
