"""Bridges from Timeline / TransferLog / ServingReport."""

import pytest

from repro.inference.tensors import TransferLog
from repro.serving.simulator import ServedRequest, ServingReport
from repro.models.workload import InferenceRequest
from repro.sim.trace import TaskRecord, Timeline
from repro.telemetry.bridge import (serving_report_to_metrics,
                                    serving_report_to_spans,
                                    timeline_to_spans,
                                    transfer_log_to_counters)
from repro.telemetry.metrics import MetricsRegistry


def _timeline():
    return Timeline([
        TaskRecord("c0", "compute", "compute L0", 0.0, 2.0),
        TaskRecord("w1", "pcie", "weights L1", 0.0, 1.0),
        TaskRecord("c1", "compute", "compute L1", 2.0, 3.0),
    ])


def test_timeline_round_trips_into_spans():
    spans = timeline_to_spans(_timeline())
    assert len(spans) == 3
    by_id = {span.args["task_id"]: span for span in spans}
    assert by_id["w1"].track == "pcie"
    assert by_id["w1"].name == "weights L1"
    assert by_id["c1"].start == 2.0 and by_id["c1"].finish == 3.0


def test_timeline_to_trace_events_method():
    events = _timeline().to_trace_events()
    complete = [e for e in events if e["ph"] == "X"]
    assert len(complete) == 3
    lanes = {e["args"]["name"] for e in events if e["ph"] == "M"}
    assert lanes == {"compute", "pcie"}
    # Sim seconds -> trace microseconds.
    c0 = next(e for e in complete if e["args"]["task_id"] == "c0")
    assert c0["dur"] == pytest.approx(2e6)


def test_transfer_log_reconciles_exactly():
    log = TransferLog()
    log.record("weights:L0", "cpu", "gpu", 1000)
    log.record("act:L0:S2", "cpu", "gpu", 24)
    log.record("act:L0:S3", "gpu", "cpu", 8)
    registry = MetricsRegistry()
    transfer_log_to_counters(log, registry)
    assert registry.counter_value("pcie.bytes", source="cpu",
                                  destination="gpu") == 1024
    assert registry.counter_value("pcie.bytes", source="gpu",
                                  destination="cpu") == 8
    total = sum(counter.value for counter in registry.counters()
                if counter.name == "pcie.bytes")
    assert total == log.total_bytes
    assert registry.counter_value("pcie.transfers", source="cpu",
                                  destination="gpu") == 2


def _report():
    request = InferenceRequest(1, 8, 4)
    return ServingReport([
        ServedRequest(request, arrival=0.0, start=0.0, finish=1.0),
        ServedRequest(request, arrival=0.5, start=1.0, finish=2.0),
    ])


def test_serving_report_metrics():
    registry = MetricsRegistry()
    serving_report_to_metrics(_report(), registry, system="spr-a100",
                              model="opt-30b")
    latency = registry.histogram("serving.latency_s",
                                 system="spr-a100", model="opt-30b")
    assert latency.count == 2
    assert latency.max == pytest.approx(1.5)
    assert registry.counter_value("serving.requests",
                                  system="spr-a100",
                                  model="opt-30b") == 2
    assert registry.counter_value("serving.generated_tokens",
                                  system="spr-a100",
                                  model="opt-30b") == 8


def test_serving_report_spans_split_queue_and_service():
    spans = serving_report_to_spans(_report())
    server = [s for s in spans if s.track == "server"]
    queue = [s for s in spans if s.track == "queue"]
    assert len(server) == 2
    assert len(queue) == 1  # only the second request waited
    assert queue[0].start == 0.5 and queue[0].finish == 1.0
    # Service spans are disjoint on the single server.
    assert server[0].finish <= server[1].start
