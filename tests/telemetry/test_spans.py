"""Span tracer over simulated clocks."""

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.spans import Span, TickClock, Tracer


def test_tick_clock_advances_and_rejects_reverse():
    clock = TickClock()
    assert clock() == 0.0
    clock.advance()
    clock.advance(2.5)
    assert clock() == 3.5
    with pytest.raises(ConfigurationError):
        clock.advance(-1.0)


def test_nested_spans_envelop_children():
    tracer = Tracer()
    with tracer.span("outer", track="engine"):
        tracer.tick()
        with tracer.span("inner", track="cpu"):
            tracer.tick(2.0)
        tracer.tick()
    spans = {span.name: span for span in tracer.spans}
    inner, outer = spans["inner"], spans["outer"]
    assert outer.start <= inner.start
    assert inner.finish <= outer.finish
    assert inner.duration == pytest.approx(2.0)
    assert outer.duration == pytest.approx(4.0)


def test_span_args_and_tracks():
    tracer = Tracer()
    with tracer.span("move", track="pcie", bytes=128) as span:
        span.args["extra"] = True
        tracer.tick()
    assert tracer.tracks() == ["pcie"]
    only = tracer.spans_on("pcie")[0]
    assert only.args == {"bytes": 128, "extra": True}
    assert tracer.busy_time("pcie") == pytest.approx(1.0)


def test_add_span_with_explicit_times():
    tracer = Tracer()
    span = tracer.add_span("req", "server", 1.0, 3.5, batch=4)
    assert isinstance(span, Span)
    assert span.duration == pytest.approx(2.5)
    with pytest.raises(ConfigurationError):
        tracer.add_span("bad", "server", 2.0, 1.0)


def test_tick_requires_tick_clock():
    tracer = Tracer(clock=lambda: 42.0)
    with pytest.raises(ConfigurationError):
        tracer.tick()
    with tracer.span("s", track="t"):
        pass
    assert tracer.spans[0].start == 42.0
    assert tracer.spans[0].duration == 0.0
