"""Counters, gauges, and streaming histograms."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.metrics import MetricsRegistry, StreamingHistogram


def test_counter_get_or_create_by_labels():
    registry = MetricsRegistry()
    a = registry.counter("pcie.bytes", source="cpu", destination="gpu")
    b = registry.counter("pcie.bytes", destination="gpu", source="cpu")
    other = registry.counter("pcie.bytes", source="gpu",
                             destination="cpu")
    a.inc(10)
    b.inc(5)
    assert a is b
    assert a is not other
    assert registry.counter_value("pcie.bytes", source="cpu",
                                  destination="gpu") == 15
    assert registry.counter_value("pcie.bytes", source="gpu",
                                  destination="cpu") == 0.0


def test_counter_rejects_negative_increment():
    with pytest.raises(ConfigurationError):
        MetricsRegistry().counter("x").inc(-1.0)


def test_gauge_set_and_add():
    gauge = MetricsRegistry().gauge("depth")
    gauge.set(3.0)
    gauge.add(-1.0)
    assert gauge.value == 2.0


def test_histogram_summary_stats():
    histogram = StreamingHistogram("lat")
    for value in (1.0, 2.0, 3.0, 4.0):
        histogram.observe(value)
    assert histogram.count == 4
    assert histogram.mean == pytest.approx(2.5)
    assert histogram.min == 1.0
    assert histogram.max == 4.0
    assert histogram.quantile(0.0) == 1.0
    assert histogram.quantile(1.0) == 4.0


def test_histogram_quantiles_track_exact_percentiles():
    # Streaming buckets grow by ~2.2%, so any quantile must land
    # within a few percent of the exact order statistic.
    rng = random.Random(7)
    samples = [rng.expovariate(1.0) + 0.01 for __ in range(5000)]
    histogram = StreamingHistogram("lat")
    for sample in samples:
        histogram.observe(sample)
    ordered = sorted(samples)
    for fraction in (0.5, 0.9, 0.95, 0.99):
        exact = ordered[min(len(ordered) - 1,
                            int(fraction * len(ordered)))]
        estimate = histogram.quantile(fraction)
        assert estimate == pytest.approx(exact, rel=0.05)


def test_histogram_bounded_memory():
    histogram = StreamingHistogram("lat")
    for index in range(100_000):
        histogram.observe(0.001 + (index % 1000) * 0.01)
    # 0.001..10 spans ~13 octaves at 32 buckets each — far fewer
    # buckets than samples.
    assert len(histogram._buckets) < 500
    assert histogram.count == 100_000


def test_histogram_nonpositive_and_empty():
    histogram = StreamingHistogram("lat")
    with pytest.raises(ConfigurationError):
        histogram.quantile(0.5)
    histogram.observe(0.0)
    histogram.observe(5.0)
    assert histogram.quantile(0.25) == 0.0
    assert histogram.max == 5.0
    with pytest.raises(ConfigurationError):
        histogram.quantile(1.5)


def test_histogram_single_sample():
    histogram = StreamingHistogram("lat")
    histogram.observe(0.25)
    for fraction in (0.0, 0.5, 0.95, 1.0):
        assert histogram.quantile(fraction) == pytest.approx(0.25)


def test_snapshot_rows_are_deterministic_and_typed():
    registry = MetricsRegistry()
    registry.counter("b.counter", phase="decode").inc(2)
    registry.gauge("a.gauge").set(1.5)
    registry.histogram("c.hist").observe(0.5)
    rows = registry.snapshot()
    assert [row["metric"] for row in rows] == ["a.gauge", "b.counter",
                                               "c.hist"]
    by_name = {row["metric"]: row for row in rows}
    assert by_name["b.counter"]["type"] == "counter"
    assert by_name["b.counter"]["labels"] == {"phase": "decode"}
    assert by_name["c.hist"]["count"] == 1
    assert "p95" in by_name["c.hist"]
