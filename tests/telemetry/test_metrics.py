"""Counters, gauges, and streaming histograms."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.metrics import MetricsRegistry, StreamingHistogram


def test_counter_get_or_create_by_labels():
    registry = MetricsRegistry()
    a = registry.counter("pcie.bytes", source="cpu", destination="gpu")
    b = registry.counter("pcie.bytes", destination="gpu", source="cpu")
    other = registry.counter("pcie.bytes", source="gpu",
                             destination="cpu")
    a.inc(10)
    b.inc(5)
    assert a is b
    assert a is not other
    assert registry.counter_value("pcie.bytes", source="cpu",
                                  destination="gpu") == 15
    assert registry.counter_value("pcie.bytes", source="gpu",
                                  destination="cpu") == 0.0


def test_counter_rejects_negative_increment():
    with pytest.raises(ConfigurationError):
        MetricsRegistry().counter("x").inc(-1.0)


def test_gauge_set_and_add():
    gauge = MetricsRegistry().gauge("depth")
    gauge.set(3.0)
    gauge.add(-1.0)
    assert gauge.value == 2.0


def test_histogram_summary_stats():
    histogram = StreamingHistogram("lat")
    for value in (1.0, 2.0, 3.0, 4.0):
        histogram.observe(value)
    assert histogram.count == 4
    assert histogram.mean == pytest.approx(2.5)
    assert histogram.min == 1.0
    assert histogram.max == 4.0
    assert histogram.quantile(0.0) == 1.0
    assert histogram.quantile(1.0) == 4.0


def test_histogram_quantiles_track_exact_percentiles():
    # Streaming buckets grow by ~2.2%, so any quantile must land
    # within a few percent of the exact order statistic.
    rng = random.Random(7)
    samples = [rng.expovariate(1.0) + 0.01 for __ in range(5000)]
    histogram = StreamingHistogram("lat")
    for sample in samples:
        histogram.observe(sample)
    ordered = sorted(samples)
    for fraction in (0.5, 0.9, 0.95, 0.99):
        exact = ordered[min(len(ordered) - 1,
                            int(fraction * len(ordered)))]
        estimate = histogram.quantile(fraction)
        assert estimate == pytest.approx(exact, rel=0.05)


def test_histogram_bounded_memory():
    histogram = StreamingHistogram("lat")
    for index in range(100_000):
        histogram.observe(0.001 + (index % 1000) * 0.01)
    # 0.001..10 spans ~13 octaves at 32 buckets each — far fewer
    # buckets than samples.
    assert len(histogram._buckets) < 500
    assert histogram.count == 100_000


def test_histogram_nonpositive_and_empty():
    histogram = StreamingHistogram("lat")
    with pytest.raises(ConfigurationError):
        histogram.quantile(0.5)
    histogram.observe(0.0)
    histogram.observe(5.0)
    assert histogram.quantile(0.25) == 0.0
    assert histogram.max == 5.0
    with pytest.raises(ConfigurationError):
        histogram.quantile(1.5)


def test_histogram_single_sample():
    histogram = StreamingHistogram("lat")
    histogram.observe(0.25)
    for fraction in (0.0, 0.5, 0.95, 1.0):
        assert histogram.quantile(fraction) == pytest.approx(0.25)


def _observe(values):
    histogram = StreamingHistogram("lat")
    for value in values:
        histogram.observe(value)
    return histogram


def _state(histogram):
    """Everything ``merge`` must preserve, in comparable form.

    ``total`` is a float sum and so subject to fold order (see the
    ``merge`` docstring); it is compared approximately, everything
    else exactly.
    """
    return (dict(histogram._buckets), histogram._nonpositive,
            histogram.count, pytest.approx(histogram.total),
            histogram.min, histogram.max)


def test_histogram_merge_equals_single_stream():
    rng = random.Random(13)
    samples = [rng.expovariate(0.5) for __ in range(3000)] + [0.0]
    merged = _observe(samples[:1000]).merge(
        _observe(samples[1000:]))
    whole = _observe(samples)
    assert _state(merged) == _state(whole)
    for fraction in (0.1, 0.5, 0.95, 0.99):
        assert merged.quantile(fraction) == whole.quantile(fraction)


def test_histogram_merge_commutative_and_associative():
    # ``merge`` mutates the receiver, so every ordering starts from
    # fresh copies of the same three streams.
    rng = random.Random(29)
    streams = [[rng.lognormvariate(0.0, 2.0) for __ in range(500)]
               for __ in range(3)]
    a, b, c = streams

    ab = _observe(a).merge(_observe(b))
    ba = _observe(b).merge(_observe(a))
    assert _state(ab) == _state(ba)

    left = _observe(a).merge(_observe(b)).merge(_observe(c))
    right = _observe(a).merge(_observe(b).merge(_observe(c)))
    assert _state(left) == _state(right)


def test_histogram_merge_with_empty_is_identity():
    histogram = _observe([0.5, 2.0, 8.0])
    before = _state(histogram)
    assert _state(histogram.merge(StreamingHistogram("lat"))) == before
    empty = StreamingHistogram("lat")
    assert _state(empty.merge(_observe([0.5, 2.0, 8.0]))) == before


def test_snapshot_rows_are_deterministic_and_typed():
    registry = MetricsRegistry()
    registry.counter("b.counter", phase="decode").inc(2)
    registry.gauge("a.gauge").set(1.5)
    registry.histogram("c.hist").observe(0.5)
    rows = registry.snapshot()
    assert [row["metric"] for row in rows] == ["a.gauge", "b.counter",
                                               "c.hist"]
    by_name = {row["metric"]: row for row in rows}
    assert by_name["b.counter"]["type"] == "counter"
    assert by_name["b.counter"]["labels"] == {"phase": "decode"}
    assert by_name["c.hist"]["count"] == 1
    assert "p95" in by_name["c.hist"]
