"""Chrome trace and metric-dump exporters, checked against the
schema validator CI uses (scripts/validate_trace.py)."""

import csv
import importlib.util
import json
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.export import (build_chrome_trace, render_metrics,
                                    spans_to_trace_events,
                                    write_chrome_trace,
                                    write_metrics_csv,
                                    write_metrics_json)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import Span

_VALIDATOR_PATH = (Path(__file__).resolve().parents[2] / "scripts"
                   / "validate_trace.py")


def _load_validator():
    spec = importlib.util.spec_from_file_location("validate_trace",
                                                  _VALIDATOR_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


validate_trace = _load_validator()


def _spans():
    return [
        Span("compute L0", "cpu", 0.0, 1.5, {"layer": 0}),
        Span("weights L1", "pcie", 0.5, 1.0, {"bytes": 4096}),
        Span("compute L1", "gpu", 1.5, 2.0, {}),
    ]


def test_spans_to_trace_events_structure():
    events = spans_to_trace_events(_spans())
    metadata = [e for e in events if e["ph"] == "M"]
    complete = [e for e in events if e["ph"] == "X"]
    assert len(complete) == 3
    # One thread_name record per distinct track.
    assert sorted(m["args"]["name"] for m in metadata) == ["cpu", "gpu",
                                                           "pcie"]
    first = complete[0]
    assert first["ts"] == 0.0
    assert first["dur"] == pytest.approx(1.5e6)  # seconds -> us
    assert first["args"] == {"layer": 0}
    # Same track -> same tid; different tracks -> different tids.
    tids = {e["name"]: e["tid"] for e in complete}
    assert len(set(tids.values())) == 3


def test_shared_track_ids_across_sources():
    track_ids = {}
    first = spans_to_trace_events(_spans(), track_ids=track_ids)
    second = spans_to_trace_events(
        [Span("more", "cpu", 3.0, 4.0, {})], track_ids=track_ids)
    cpu_tid = next(e["tid"] for e in first
                   if e["ph"] == "X" and e["cat"] == "cpu")
    assert second[0]["tid"] == cpu_tid  # no duplicate metadata either
    assert all(e["ph"] == "X" for e in second)


def test_written_trace_passes_schema_validator(tmp_path):
    path = write_chrome_trace(tmp_path / "out.trace.json", _spans(),
                              metadata={"mode": "test"})
    assert validate_trace.validate_trace_file(path) == []
    document = json.loads(path.read_text())
    assert document["otherData"]["mode"] == "test"


def test_validator_flags_broken_traces(tmp_path):
    assert validate_trace.validate_trace_object([]) != []
    assert validate_trace.validate_trace_object({"traceEvents": {}}) != []
    bad_event = {"traceEvents": [{"ph": "X", "name": "x", "ts": -1.0,
                                  "dur": 0, "pid": 1, "tid": 1}]}
    assert any("ts" in message for message in
               validate_trace.validate_trace_object(bad_event))
    missing = tmp_path / "nope.json"
    assert validate_trace.validate_trace_file(missing) != []


def test_empty_trace_is_an_error(tmp_path):
    with pytest.raises(ConfigurationError):
        write_chrome_trace(tmp_path / "empty.trace.json", [])


def _registry():
    registry = MetricsRegistry()
    registry.counter("pcie.bytes", source="cpu",
                     destination="gpu").inc(4096)
    registry.histogram("latency_s").observe(0.5)
    registry.gauge("utilization").set(0.75)
    return registry


def test_metrics_json_round_trip(tmp_path):
    path = write_metrics_json(tmp_path / "metrics.json", _registry(),
                              title="unit test")
    document = json.loads(path.read_text())
    assert document["title"] == "unit test"
    names = [row["metric"] for row in document["metrics"]]
    assert names == sorted(names)
    byte_row = next(row for row in document["metrics"]
                    if row["metric"] == "pcie.bytes")
    assert byte_row["value"] == 4096
    assert byte_row["labels"] == {"source": "cpu",
                                  "destination": "gpu"}


def test_metrics_csv_follows_export_conventions(tmp_path):
    path = write_metrics_csv(tmp_path / "metrics.csv", _registry())
    lines = path.read_text().splitlines()
    assert lines[0].startswith("# ")
    rows = list(csv.DictReader(lines[1:]))
    assert {row["metric"] for row in rows} == {"pcie.bytes",
                                               "latency_s",
                                               "utilization"}
    byte_row = next(r for r in rows if r["metric"] == "pcie.bytes")
    assert byte_row["labels"] == "destination=gpu,source=cpu"
    with pytest.raises(ConfigurationError):
        write_metrics_csv(tmp_path / "empty.csv", MetricsRegistry())


def test_render_metrics_is_human_readable():
    text = render_metrics(_registry())
    assert "pcie.bytes{destination=gpu,source=cpu}: 4096" in text
    assert "latency_s" in text and "p95" in text
    assert render_metrics(MetricsRegistry()) == "  (no metrics recorded)"


def test_build_chrome_trace_shape():
    document = build_chrome_trace([{"ph": "X"}], {"k": "v"})
    assert set(document) == {"traceEvents", "displayTimeUnit",
                             "otherData"}
