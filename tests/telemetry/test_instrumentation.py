"""End-to-end instrumentation: engine, serving, optimizer, CXL.

The acceptance invariant lives here: telemetry byte counters for a
CooperativeEngine run exactly equal ``GenerationResult.pcie_bytes``.
"""

import numpy as np
import pytest

from repro.core.config import LiaConfig
from repro.core.estimator import LiaEstimator
from repro.core.optimizer import optimal_policy
from repro.core.policy import FULL_CPU, PARTIAL_CPU
from repro.cxl.tiering import adaptive_config, plan_tiering
from repro.inference.engine import CooperativeEngine
from repro.inference.transformer import TinyTransformer
from repro.models.sublayers import Stage
from repro.models.workload import InferenceRequest
from repro.models.zoo import get_model
from repro.telemetry import Telemetry, activate, current


@pytest.fixture
def tiny_model(tiny_spec):
    return TinyTransformer(tiny_spec, seed=0)


def _prompt(batch=1, length=6):
    return (np.arange(batch * length) % 11).reshape(batch, length)


def test_engine_byte_counters_equal_pcie_bytes(tiny_model):
    telemetry = Telemetry()
    engine = CooperativeEngine(tiny_model, prefill_policy=PARTIAL_CPU,
                               decode_policy=FULL_CPU,
                               telemetry=telemetry)
    result = engine.generate(_prompt(), max_new_tokens=3)
    counted = sum(counter.value
                  for counter in telemetry.metrics.counters()
                  if counter.name == "pcie.bytes")
    assert result.pcie_bytes > 0
    assert counted == result.pcie_bytes
    transfers = sum(counter.value
                    for counter in telemetry.metrics.counters()
                    if counter.name == "pcie.transfers")
    assert transfers == len(result.transfers.records)


def test_engine_spans_cover_stages_and_sublayers(tiny_model, tiny_spec):
    telemetry = Telemetry()
    engine = CooperativeEngine(tiny_model, prefill_policy=PARTIAL_CPU,
                               decode_policy=PARTIAL_CPU,
                               telemetry=telemetry)
    engine.generate(_prompt(), max_new_tokens=2)
    tracer = telemetry.tracer
    engine_spans = tracer.spans_on("engine")
    names = [span.name for span in engine_spans]
    assert "prefill" in names and "decode[0]" in names
    # 6 sublayers per layer per forward pass (prefill + 1 decode).
    device_spans = tracer.spans_on("cpu") + tracer.spans_on("gpu")
    assert len(device_spans) == 2 * 6 * tiny_spec.n_layers
    # Transfer spans carry their byte counts.
    pcie_spans = tracer.spans_on("pcie")
    assert pcie_spans and all(span.args["bytes"] > 0
                              for span in pcie_spans)
    # Stage spans envelop everything that ran inside them.
    prefill = next(s for s in engine_spans if s.name == "prefill")
    inner = [s for s in device_spans + pcie_spans
             if s.start < prefill.finish]
    assert all(s.finish <= prefill.finish for s in inner)


def test_engine_uses_ambient_telemetry(tiny_model):
    telemetry = Telemetry()
    engine = CooperativeEngine(tiny_model, prefill_policy=PARTIAL_CPU,
                               decode_policy=FULL_CPU)
    with activate(telemetry):
        result = engine.generate(_prompt(), max_new_tokens=2)
    counted = sum(counter.value
                  for counter in telemetry.metrics.counters()
                  if counter.name == "pcie.bytes")
    assert counted == result.pcie_bytes
    assert current() is None  # deactivated on exit


def test_untelemetered_engine_still_works(tiny_model):
    engine = CooperativeEngine(tiny_model, prefill_policy=FULL_CPU,
                               decode_policy=FULL_CPU)
    result = engine.generate(_prompt(), max_new_tokens=2)
    assert result.tokens.shape == (1, 2)


def test_optimizer_counts_policy_evaluations(opt_30b, spr_a100,
                                             eval_config):
    telemetry = Telemetry()
    with activate(telemetry):
        optimal_policy(opt_30b, Stage.DECODE, 4, 128, spr_a100,
                       eval_config)
    assert telemetry.metrics.counter_value(
        "policy.searches", stage="decode") == 1
    # Eq. (1) enumerates all 64 policy vectors.
    assert telemetry.metrics.counter_value(
        "policy.evaluations", stage="decode") == 64


def test_cxl_tiering_counters(opt_30b, spr_a100, eval_config):
    telemetry = Telemetry()
    system = spr_a100.with_cxl(n_expanders=2)
    request = InferenceRequest(64, 128, 16)
    with activate(telemetry):
        plan = plan_tiering(opt_30b, request, system, eval_config)
        adaptive_config(opt_30b, request, system, eval_config)
    assert telemetry.metrics.counter_value(
        "cxl.tier_bytes", tier="ddr",
        system=system.name) == pytest.approx(plan.ddr_bytes)
    assert telemetry.metrics.counter_value(
        "cxl.tier_bytes", tier="cxl",
        system=system.name) == pytest.approx(plan.cxl_bytes)
    decisions = [counter for counter in telemetry.metrics.counters()
                 if counter.name == "cxl.placement_decisions"]
    assert sum(counter.value for counter in decisions) == 1


def test_serving_simulator_fills_histograms(opt_30b, spr_a100,
                                            eval_config):
    from repro.serving.simulator import ServingSimulator

    telemetry = Telemetry()
    simulator = ServingSimulator(
        LiaEstimator(opt_30b, spr_a100, eval_config),
        telemetry=telemetry)
    requests = [InferenceRequest(1, 64, 8) for __ in range(5)]
    report = simulator.run(requests, [0.0] * 5)
    latency = telemetry.metrics.histogram(
        "serving.latency_s", system=spr_a100.name, model=opt_30b.name)
    assert latency.count == 5
    # The streaming histogram agrees with the report's exact math.
    for fraction in (0.5, 0.95):
        assert latency.quantile(fraction) == pytest.approx(
            report.latency_percentile(fraction), rel=0.05)
    server_spans = telemetry.tracer.spans_on("server")
    assert len(server_spans) == 5
    assert server_spans[-1].finish == pytest.approx(report.makespan)
