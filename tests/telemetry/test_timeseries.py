"""Windowed serving time series, SLO burn-rate monitors, fleet merge.

The contracts under test:

* the vectorized windowing kernel is *exact* on its count channels
  and busy-seconds integral, and bit-identical between the loop and
  vectorized serving engines for the same run;
* the unsorted fallback (argsort) equals the sorted fast path;
* :meth:`ServingTimeseries.merge` is the fleet aggregation
  primitive: split == whole, replicas sum to the direct fleet
  computation;
* every fired SLO alert in a faulted run is attributed to an
  overlapping injected :class:`FaultEvent` window — or explicitly to
  organic load.
"""

import numpy as np
import pytest

from repro.core.estimator import LiaEstimator
from repro.errors import ConfigurationError
from repro.faults.spec import FaultEvent, FaultKind, FaultScenario
from repro.models.workload import InferenceRequest
from repro.serving import (MultiReplicaSimulator, ServingSimulator,
                           WorkloadVector, arrivals_poisson)
from repro.telemetry.timeseries import (ORGANIC_LOAD, SLOPolicy,
                                        WindowGrid, compute_timeseries,
                                        evaluate_slo, fleet_timeseries,
                                        monitor_report,
                                        timeseries_from_report)

SHAPE_MIXES = {
    "single": [InferenceRequest(1, 128, 16)],
    "tier1": [InferenceRequest(1, 128, 16), InferenceRequest(1, 256, 32),
              InferenceRequest(1, 512, 32), InferenceRequest(8, 256, 32)],
    "batched": [InferenceRequest(8, 256, 32), InferenceRequest(16, 128, 16)],
}


@pytest.fixture
def simulator(opt_30b, spr_a100, eval_config):
    return ServingSimulator(LiaEstimator(opt_30b, spr_a100, eval_config))


def _fresh_simulator(simulator):
    return ServingSimulator(simulator.estimator)


def _series_equal(left, right):
    """Bit-identity across every channel, NaN-aware percentiles."""
    assert np.array_equal(left.arrived, right.arrived)
    assert np.array_equal(left.started, right.started)
    assert np.array_equal(left.finished, right.finished)
    assert np.array_equal(left.queue_depth, right.queue_depth)
    assert np.array_equal(left.busy_s, right.busy_s)
    assert set(left.weighted) == set(right.weighted)
    for name in left.weighted:
        assert np.array_equal(left.weighted[name],
                              right.weighted[name])
    for fraction in (0.50, 0.95, 0.99):
        assert np.array_equal(left.percentile(fraction),
                              right.percentile(fraction),
                              equal_nan=True)


# ----------------------------------------------------------------------
# Grid and kernel exactness
# ----------------------------------------------------------------------
def test_window_grid_cover_and_lookup():
    grid = WindowGrid.cover(10.0, n_windows=5)
    assert grid.window_s == pytest.approx(2.0)
    assert grid.edges.shape == (6,)
    assert grid.window_of(0.0) == 0
    assert grid.window_of(1.99) == 0
    assert grid.window_of(2.0) == 1
    # Times at/after the horizon clamp into the last window.
    assert grid.window_of(10.0) == 4
    degenerate = WindowGrid.cover(0.0, n_windows=4)
    assert degenerate.window_s > 0.0


def test_handcrafted_channels_are_exact():
    # Three back-to-back requests on one always-busy server:
    # arrive 0/1/2, start 0/2/4, finish 2/4/6.
    arrivals = np.array([0.0, 1.0, 2.0])
    starts = np.array([0.0, 2.0, 4.0])
    finishes = np.array([2.0, 4.0, 6.0])
    grid = WindowGrid(t0=0.0, window_s=1.0, n_windows=6)
    series = compute_timeseries(arrivals, starts, finishes, grid=grid)
    assert series.arrived.tolist() == [1, 1, 1, 0, 0, 0]
    assert series.started.tolist() == [1, 0, 1, 0, 1, 0]
    # The finish at t=6 (the horizon edge) lands in the last window.
    assert series.finished.tolist() == [0, 0, 1, 0, 1, 1]
    assert series.queue_depth.tolist() == [1, 2, 2, 2, 1, 0]
    # The server never idles: every window is fully busy.
    np.testing.assert_allclose(series.busy_s, 1.0)
    np.testing.assert_allclose(series.utilization, 1.0)


def test_segment_sums_handle_bounds_that_saturate_early():
    # Regression: when the cumulative bounds hit ``values.size``
    # before the final edge (all events exhausted mid-grid), the old
    # reduceat clamp dropped the last element from the window that
    # consumed it and echoed it into an empty one.
    from repro.telemetry.timeseries import _edge_counts, _segment_sums

    values = np.array([0.5, 1.5, 2.5, 3.5])
    edges = np.array([0.0, 2.0, 4.0, 6.0, 8.0])
    bounds = _edge_counts(values, edges)
    assert bounds.tolist() == [0, 2, 4, 4, 4]
    sums = _segment_sums(values, bounds)
    np.testing.assert_allclose(sums, [2.0, 6.0, 0.0, 0.0])
    # Per-window sums always partition the total.
    assert sums.sum() == pytest.approx(values.sum())
    # All-empty and empty-input degenerate cases.
    np.testing.assert_allclose(
        _segment_sums(values, np.zeros(5, dtype=int)), 0.0)
    np.testing.assert_allclose(
        _segment_sums(np.array([]), bounds * 0), 0.0)


def test_busy_seconds_match_bruteforce_integral(simulator):
    workload = WorkloadVector.sample_mix(SHAPE_MIXES["tier1"], 200,
                                         seed=5)
    arrivals = arrivals_poisson(200, 0.3, seed=5)
    report = _fresh_simulator(simulator).run(workload, arrivals,
                                             vectorized=True)
    series = timeseries_from_report(report, n_windows=37)
    edges = series.grid.edges
    expected = np.zeros(series.n_windows)
    for start, finish in zip(report.starts, report.finishes):
        lo = np.maximum(edges[:-1], start)
        hi = np.minimum(edges[1:], finish)
        expected += np.maximum(hi - lo, 0.0)
    np.testing.assert_allclose(series.busy_s, expected, atol=1e-9)


def test_conservation_and_final_drain(simulator):
    workload = WorkloadVector.sample_mix(SHAPE_MIXES["batched"], 300,
                                         seed=2)
    arrivals = arrivals_poisson(300, 0.4, seed=2)
    report = _fresh_simulator(simulator).run(workload, arrivals,
                                             vectorized=True)
    series = timeseries_from_report(report, n_windows=64)
    assert series.arrived.sum() == 300
    assert series.started.sum() == 300
    assert series.finished.sum() == 300
    assert series.queue_depth[-1] == 0
    assert (series.queue_depth >= 0).all()
    assert series.tokens is not None
    assert series.tokens.sum() == pytest.approx(
        workload.tokens_per_request().sum())


# ----------------------------------------------------------------------
# Loop vs vectorized parity, sorted vs unsorted
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mix", sorted(SHAPE_MIXES))
@pytest.mark.parametrize("n_requests,rate", [(64, 0.2), (400, 0.21)])
def test_loop_and_vectorized_series_bit_identical(simulator, mix,
                                                  n_requests, rate):
    workload = WorkloadVector.sample_mix(SHAPE_MIXES[mix], n_requests,
                                         seed=7)
    arrivals = arrivals_poisson(n_requests, rate, seed=11)
    loop = _fresh_simulator(simulator).run(
        workload.to_requests(), arrivals, vectorized=False)
    vec = _fresh_simulator(simulator).run(
        workload, arrivals, vectorized=True, streaming=False)
    loop_series = timeseries_from_report(loop, n_windows=48)
    vec_series = timeseries_from_report(vec, n_windows=48)
    _series_equal(loop_series, vec_series)
    # Exact bad counts agree too (the SLO substrate).
    threshold = float(np.median(vec.finishes - np.asarray(arrivals)))
    assert np.array_equal(loop_series.bad_counts(threshold),
                          vec_series.bad_counts(threshold))


def test_unsorted_fallback_matches_sorted_path(simulator):
    workload = WorkloadVector.sample_mix(SHAPE_MIXES["tier1"], 250,
                                         seed=9)
    arrivals = arrivals_poisson(250, 0.25, seed=9)
    report = _fresh_simulator(simulator).run(workload, arrivals,
                                             vectorized=True)
    grid = WindowGrid.cover(report.makespan, n_windows=40)
    sorted_series = compute_timeseries(
        np.asarray(arrivals), report.starts, report.finishes,
        grid=grid, assume_sorted=True)
    permutation = np.random.default_rng(3).permutation(250)
    shuffled = compute_timeseries(
        np.asarray(arrivals)[permutation],
        report.starts[permutation], report.finishes[permutation],
        grid=grid)
    _series_equal(sorted_series, shuffled)


def test_windowed_percentiles_track_exact_order_statistics(simulator):
    workload = WorkloadVector.sample_mix(SHAPE_MIXES["tier1"], 500,
                                         seed=1)
    arrivals = arrivals_poisson(500, 0.21, seed=1)
    report = _fresh_simulator(simulator).run(workload, arrivals,
                                             vectorized=True)
    series = timeseries_from_report(report, n_windows=16,
                                    percentile_stride=1)
    latencies = report.finishes - np.asarray(arrivals)
    windows = np.minimum(
        np.searchsorted(series.grid.edges, report.finishes,
                        side="right") - 1, series.n_windows - 1)
    estimate = series.percentile(0.95)
    for window in range(series.n_windows):
        sample = np.sort(latencies[windows == window])
        if not sample.size:
            assert np.isnan(estimate[window])
            continue
        exact = sample[max(0, int(np.ceil(0.95 * sample.size)) - 1)]
        # Geometric buckets grow ~2.2%; clamping to the observed
        # range keeps the estimate within a few percent.
        assert estimate[window] == pytest.approx(exact, rel=0.05)


# ----------------------------------------------------------------------
# Merge: the fleet aggregation primitive
# ----------------------------------------------------------------------
def test_merge_of_split_halves_equals_whole(simulator):
    workload = WorkloadVector.sample_mix(SHAPE_MIXES["single"], 200,
                                         seed=4)
    arrivals = np.asarray(arrivals_poisson(200, 0.3, seed=4))
    report = _fresh_simulator(simulator).run(workload, arrivals,
                                             vectorized=True)
    grid = WindowGrid.cover(report.makespan, n_windows=32)
    whole = compute_timeseries(arrivals, report.starts,
                               report.finishes, grid=grid,
                               percentile_stride=1)
    even = compute_timeseries(arrivals[0::2], report.starts[0::2],
                              report.finishes[0::2], grid=grid,
                              percentile_stride=1)
    odd = compute_timeseries(arrivals[1::2], report.starts[1::2],
                             report.finishes[1::2], grid=grid,
                             percentile_stride=1)
    merged = even.merge(odd)
    assert np.array_equal(merged.arrived, whole.arrived)
    assert np.array_equal(merged.finished, whole.finished)
    assert np.array_equal(merged.queue_depth, whole.queue_depth)
    np.testing.assert_allclose(merged.busy_s, whole.busy_s,
                               atol=1e-9)
    for fraction in (0.5, 0.95):
        assert np.array_equal(merged.percentile(fraction),
                              whole.percentile(fraction),
                              equal_nan=True)
    assert np.array_equal(merged.bad_counts(1.0),
                          whole.bad_counts(1.0))


def test_merge_rejects_mismatched_grids_and_weights():
    values = np.array([0.0, 1.0, 2.0])
    grid_a = WindowGrid(t0=0.0, window_s=1.0, n_windows=4)
    grid_b = WindowGrid(t0=0.0, window_s=2.0, n_windows=4)
    a = compute_timeseries(values, values, values + 0.5, grid=grid_a)
    b = compute_timeseries(values, values, values + 0.5, grid=grid_b)
    with pytest.raises(ConfigurationError):
        a.merge(b)
    weighted = compute_timeseries(values, values, values + 0.5,
                                  grid=grid_a,
                                  weights={"tokens": values})
    with pytest.raises(ConfigurationError):
        a.merge(weighted)


def test_fleet_timeseries_matches_direct_computation(simulator):
    workload = WorkloadVector.sample_mix(SHAPE_MIXES["tier1"], 600,
                                         seed=6)
    fleet_sim = MultiReplicaSimulator(simulator.estimator, 3,
                                      dispatch="round-robin")
    report = fleet_sim.run_poisson(workload, 0.6, seed=6)
    fleet = fleet_timeseries(report, n_windows=40)
    assert fleet.n_replicas == 3
    assert len(fleet.per_replica) == 3
    # Direct: one unsorted computation over the interleaved fleet
    # timeline must agree with the per-replica merge.
    arrivals = np.concatenate(
        [np.asarray(sub.arrivals) for sub in report.per_replica])
    starts = np.concatenate(
        [sub.starts for sub in report.per_replica])
    finishes = np.concatenate(
        [sub.finishes for sub in report.per_replica])
    direct = compute_timeseries(arrivals, starts, finishes,
                                grid=fleet.merged.grid)
    assert np.array_equal(fleet.merged.arrived, direct.arrived)
    assert np.array_equal(fleet.merged.started, direct.started)
    assert np.array_equal(fleet.merged.finished, direct.finished)
    assert np.array_equal(fleet.merged.queue_depth,
                          direct.queue_depth)
    np.testing.assert_allclose(fleet.merged.busy_s, direct.busy_s,
                               atol=1e-9)
    assert fleet.merged.n_servers == 3
    assert fleet.merged_histogram.count == report.n_served
    per_replica_counts = sum(
        sketch.count for sketch in fleet.replica_histograms.values())
    assert per_replica_counts == report.n_served


# ----------------------------------------------------------------------
# SLO burn-rate monitoring and fault attribution
# ----------------------------------------------------------------------
def _synthetic_spike_series(n=400, spike=slice(200, 240)):
    """1 req/s, latency 0.2 s except a 10 s spike mid-run."""
    arrivals = np.arange(n, dtype=np.float64)
    latencies = np.full(n, 0.2)
    latencies[spike] = 10.0
    finishes = arrivals + latencies
    order = np.argsort(finishes, kind="stable")
    grid = WindowGrid(t0=0.0, window_s=4.0, n_windows=100)
    return compute_timeseries(arrivals[order], arrivals[order],
                              finishes[order], grid=grid,
                              percentile_stride=1)


def test_burn_rate_alert_fires_on_spike_and_attributes_fault():
    series = _synthetic_spike_series()
    policy = SLOPolicy(latency_threshold_s=1.0, error_budget=0.02,
                       long_window_s=40.0, short_window_s=8.0,
                       burn_rate_threshold=2.0)
    event = FaultEvent(FaultKind.CPU_PREEMPTION, start=200.0,
                       duration=40.0, magnitude=0.5)
    monitoring = evaluate_slo(series, policy, events=[event],
                              scenario_name="synthetic")
    assert monitoring.total_bad == 40
    assert monitoring.alerts, "the spike must fire an alert"
    for alert in monitoring.alerts:
        assert alert.peak_burn_long >= policy.burn_rate_threshold
        assert alert.peak_burn_short >= policy.burn_rate_threshold
        assert alert.cause == "cpu-preemption"
        primary = alert.attributions[0]
        assert primary.overlap_s > 0.0
        assert primary.event_start_s == 200.0
    # The same alerts with no fault windows are organic load.
    organic = evaluate_slo(series, policy)
    assert organic.alerts
    assert all(a.cause == ORGANIC_LOAD for a in organic.alerts)


def test_alert_far_from_fault_window_stays_organic():
    series = _synthetic_spike_series()
    policy = SLOPolicy(latency_threshold_s=1.0, error_budget=0.02,
                       long_window_s=40.0, short_window_s=8.0,
                       attribution_lookback_s=20.0)
    # A fault window long before the spike (and outside the
    # lookback) must not claim the alert.
    event = FaultEvent(FaultKind.PCIE_DOWNSHIFT, start=0.0,
                       duration=30.0, magnitude=0.5)
    monitoring = evaluate_slo(series, policy, events=[event])
    assert monitoring.alerts
    assert all(a.cause == ORGANIC_LOAD for a in monitoring.alerts)


def test_degraded_run_alerts_attributed_against_injected_scenario(
        simulator):
    # The acceptance criterion: in a faulted scenario every fired
    # alert carries attribution consistent with the injected fault
    # windows — verified against the scenario itself, not the
    # monitor's own bookkeeping.
    scenario = FaultScenario(
        name="midrun-preemption", seed=3,
        events=(FaultEvent(FaultKind.CPU_PREEMPTION, start=200.0,
                           duration=2000.0, magnitude=0.9),))
    workload = WorkloadVector.sample_mix(SHAPE_MIXES["tier1"], 400,
                                         seed=3)
    arrivals = arrivals_poisson(400, 0.2, seed=3)
    report = _fresh_simulator(simulator).run(
        workload.to_requests(), arrivals, scenario=scenario)
    assert report.scenario is scenario
    baseline = _fresh_simulator(simulator).run(
        workload.to_requests(), arrivals)
    threshold = 1.25 * baseline.latency_percentile(0.95)
    policy = SLOPolicy(latency_threshold_s=threshold,
                       error_budget=0.05)
    monitoring = report.monitor(policy, n_windows=64)
    assert monitoring.scenario_name == "midrun-preemption"
    fault_alerts = [a for a in monitoring.alerts
                    if a.cause != ORGANIC_LOAD]
    assert fault_alerts, "a 10x slowdown window must fire alerts"
    lookback = policy.lookback_s(monitoring.timeseries.grid)
    for alert in fault_alerts:
        for attribution in alert.attributions:
            if attribution.cause == ORGANIC_LOAD:
                continue
            (event,) = [e for e in scenario.events
                        if e.kind.value == attribution.cause]
            assert attribution.event_start_s == event.start
            assert attribution.magnitude == event.magnitude
            # The claimed overlap is real: the event window crosses
            # the alert's lookback-extended interval.
            assert event.start < alert.end_s
            assert event.end > alert.start_s - lookback
            assert attribution.overlap_s > 0.0


def test_monitor_report_on_fault_free_run_is_organic(simulator):
    workload = WorkloadVector.sample_mix(SHAPE_MIXES["single"], 200,
                                         seed=8)
    arrivals = arrivals_poisson(200, 0.3, seed=8)
    report = _fresh_simulator(simulator).run(workload, arrivals,
                                             vectorized=True)
    policy = SLOPolicy(latency_threshold_s=0.5, error_budget=0.05)
    monitoring = monitor_report(report, policy, n_windows=32)
    assert monitoring.scenario_name == ""
    assert monitoring.total_requests == 200
    assert all(a.cause == ORGANIC_LOAD for a in monitoring.alerts)
    document = monitoring.to_dict()
    assert document["total_requests"] == 200
    assert len(document["burn_long"]) == 32


# ----------------------------------------------------------------------
# Exports ride the series
# ----------------------------------------------------------------------
def test_counter_events_are_schema_clean(simulator):
    from repro.telemetry import timeseries_to_counter_events

    workload = WorkloadVector.sample_mix(SHAPE_MIXES["single"], 100,
                                         seed=0)
    arrivals = arrivals_poisson(100, 0.3, seed=0)
    report = _fresh_simulator(simulator).run(workload, arrivals,
                                             vectorized=True)
    series = timeseries_from_report(report, n_windows=16)
    events = timeseries_to_counter_events(series)
    assert events
    names = {event["name"] for event in events}
    assert "serving.queue_depth" in names
    assert "serving.p95_latency_s" in names
    for event in events:
        assert event["ph"] == "C"
        assert event["ts"] >= 0.0
        for value in event["args"].values():
            assert np.isfinite(value)


def test_csv_and_dashboard_exports(tmp_path, simulator):
    from repro.telemetry import (write_dashboard_html,
                                 write_timeseries_csv)

    workload = WorkloadVector.sample_mix(SHAPE_MIXES["tier1"], 150,
                                         seed=12)
    arrivals = arrivals_poisson(150, 0.25, seed=12)
    report = _fresh_simulator(simulator).run(workload, arrivals,
                                             vectorized=True)
    policy = SLOPolicy(latency_threshold_s=1.0, error_budget=0.05)
    monitoring = monitor_report(report, policy, n_windows=24)
    series = monitoring.timeseries

    csv_path = write_timeseries_csv(tmp_path / "series.csv", series,
                                    monitoring=monitoring)
    lines = csv_path.read_text().splitlines()
    assert lines[0].startswith("#")
    header = lines[1].split(",")
    assert {"window", "queue_depth", "busy_s", "burn_long",
            "alert"} <= set(header)
    assert len(lines) == 2 + series.n_windows

    html_path = write_dashboard_html(tmp_path / "dash.html",
                                     monitoring,
                                     metadata={"seed": 12})
    text = html_path.read_text()
    assert text.startswith("<!DOCTYPE html>")
    assert "queue depth" in text
    assert "SLO alerts" in text
