"""Command-line interface."""

import pytest

from repro.cli import main


def test_models_listing(capsys):
    assert main(["models"]) == 0
    out = capsys.readouterr().out
    assert "opt-175b" in out
    assert "llama2-70b" in out


def test_systems_listing(capsys):
    assert main(["systems"]) == 0
    out = capsys.readouterr().out
    assert "spr-a100" in out
    assert "dgx-a100" in out
    assert "$" in out


def test_plan_online(capsys):
    assert main(["plan", "--model", "opt-30b", "--system", "spr-a100",
                 "--batch", "1", "--input-len", "128",
                 "--output-len", "8"]) == 0
    out = capsys.readouterr().out
    assert "prefill policy" in out
    assert "(1, 1, 1, 1, 1, 1)" in out
    assert "tokens/s" in out


def test_plan_with_cxl(capsys):
    assert main(["plan", "--model", "opt-30b", "--system", "spr-a100",
                 "--batch", "64", "--cxl"]) == 0
    out = capsys.readouterr().out
    assert "CXL 55.8 GiB" in out or "CXL 55.9 GiB" in out


def test_plan_memory_enforcement(capsys):
    code = main(["plan", "--model", "opt-175b", "--system", "spr-a100",
                 "--batch", "900", "--input-len", "1024",
                 "--enforce-memory"])
    assert code == 1
    assert "error:" in capsys.readouterr().err


def test_policy_map(capsys):
    assert main(["policy-map", "--model", "opt-175b", "--system",
                 "spr-a100", "--stage", "decode", "--batches", "1",
                 "900", "--lengths", "256"]) == 0
    out = capsys.readouterr().out
    assert "(1, 1, 1, 1, 1, 1)" in out


def test_experiment_list(capsys):
    assert main(["experiment", "--list"]) == 0
    out = capsys.readouterr().out
    assert "fig10" in out
    assert "tab4" in out


def test_experiment_run_and_csv(capsys, tmp_path):
    assert main(["experiment", "fig01", "--csv-dir",
                 str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "ops/byte heatmap" in out
    assert (tmp_path / "fig01.csv").exists()


def test_experiment_unknown_id(capsys):
    assert main(["experiment", "fig99"]) == 2
    assert "unknown" in capsys.readouterr().err


def test_unknown_model_is_clean_error(capsys):
    assert main(["plan", "--model", "gpt-9"]) == 1
    assert "unknown model" in capsys.readouterr().err
