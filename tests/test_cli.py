"""Command-line interface."""

import pytest

from repro.cli import main


def test_models_listing(capsys):
    assert main(["models"]) == 0
    out = capsys.readouterr().out
    assert "opt-175b" in out
    assert "llama2-70b" in out


def test_systems_listing(capsys):
    assert main(["systems"]) == 0
    out = capsys.readouterr().out
    assert "spr-a100" in out
    assert "dgx-a100" in out
    assert "$" in out


def test_plan_online(capsys):
    assert main(["plan", "--model", "opt-30b", "--system", "spr-a100",
                 "--batch", "1", "--input-len", "128",
                 "--output-len", "8"]) == 0
    out = capsys.readouterr().out
    assert "prefill policy" in out
    assert "(1, 1, 1, 1, 1, 1)" in out
    assert "tokens/s" in out


def test_plan_with_cxl(capsys):
    assert main(["plan", "--model", "opt-30b", "--system", "spr-a100",
                 "--batch", "64", "--cxl"]) == 0
    out = capsys.readouterr().out
    assert "CXL 55.8 GiB" in out or "CXL 55.9 GiB" in out


def test_plan_memory_enforcement(capsys):
    code = main(["plan", "--model", "opt-175b", "--system", "spr-a100",
                 "--batch", "900", "--input-len", "1024",
                 "--enforce-memory"])
    assert code == 1
    assert "error:" in capsys.readouterr().err


def test_policy_map(capsys):
    assert main(["policy-map", "--model", "opt-175b", "--system",
                 "spr-a100", "--stage", "decode", "--batches", "1",
                 "900", "--lengths", "256"]) == 0
    out = capsys.readouterr().out
    assert "(1, 1, 1, 1, 1, 1)" in out


def test_experiment_list(capsys):
    assert main(["experiment", "--list"]) == 0
    out = capsys.readouterr().out
    assert "fig10" in out
    assert "tab4" in out


def test_experiment_run_and_csv(capsys, tmp_path):
    assert main(["experiment", "fig01", "--csv-dir",
                 str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "ops/byte heatmap" in out
    assert (tmp_path / "fig01.csv").exists()


def test_experiment_unknown_id(capsys):
    assert main(["experiment", "fig99"]) == 2
    assert "unknown" in capsys.readouterr().err


def test_unknown_model_is_clean_error(capsys):
    assert main(["plan", "--model", "gpt-9"]) == 1
    assert "unknown model" in capsys.readouterr().err


@pytest.mark.parametrize("argv", [
    ["plan", "--model", "gpt-9"],
    ["plan", "--system", "tpu-pod"],
    ["policy-map", "--model", "gpt-9"],
    ["policy-map", "--system", "tpu-pod"],
    ["sweep", "--model", "gpt-9"],
    ["sweep", "--system", "tpu-pod"],
    ["trace", "--model", "gpt-9"],
    ["trace", "--system", "tpu-pod"],
    ["faults", "--model", "gpt-9"],
    ["faults", "--system", "tpu-pod"],
    ["serve", "--model", "gpt-9"],
    ["serve", "--system", "tpu-pod"],
    ["monitor", "--model", "gpt-9"],
    ["monitor", "--system", "tpu-pod"],
    ["fleet", "--model", "gpt-9"],
    ["fleet", "--system", "tpu-pod"],
    ["fleet", "--preset", "hurricane"],
    ["fleet", "--trace", "full-moon"],
    ["fleet", "--chaos", "volcano"],
])
def test_unknown_names_exit_nonzero_with_one_line_error(capsys, argv):
    """Every subcommand turns unknown zoo names into `error: ...`, not
    a traceback (exit code 1, single diagnostic line on stderr)."""
    assert main(argv) == 1
    err = capsys.readouterr().err
    assert err.startswith("error: unknown")
    assert "Traceback" not in err
    assert len(err.strip().splitlines()) == 1


def _load_trace_validator():
    import importlib.util
    from pathlib import Path

    path = (Path(__file__).resolve().parents[1] / "scripts"
            / "validate_trace.py")
    spec = importlib.util.spec_from_file_location("validate_trace", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_trace_engine_mode_writes_valid_trace(capsys, tmp_path):
    import json

    out = tmp_path / "run.trace.json"
    assert main(["trace", "--model", "opt-tiny", "--decode-policy",
                 "011000", "--input-len", "4", "--output-len", "2",
                 "--out", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "PCIe bytes" in printed
    assert "pcie.bytes" in printed
    assert _load_trace_validator().validate_trace_file(out) == []
    metrics_path = tmp_path / "run.metrics.json"
    assert metrics_path.exists()
    document = json.loads(metrics_path.read_text())
    names = {row["metric"] for row in document["metrics"]}
    assert "pcie.bytes" in names and "policy.evaluations" in names
    trace = json.loads(out.read_text())
    assert trace["otherData"]["pcie_bytes"] > 0


def test_trace_serving_mode(capsys, tmp_path):
    out = tmp_path / "serving.trace.json"
    assert main(["trace", "--mode", "serving", "--model", "opt-30b",
                 "--requests", "4", "--out", str(out)]) == 0
    assert "served 4 requests" in capsys.readouterr().out
    assert _load_trace_validator().validate_trace_file(out) == []


def test_trace_schedule_mode(capsys, tmp_path):
    out = tmp_path / "schedule.trace.json"
    assert main(["trace", "--mode", "schedule", "--model", "opt-30b",
                 "--batch", "64", "--input-len", "256",
                 "--out", str(out)]) == 0
    assert "makespan" in capsys.readouterr().out
    assert _load_trace_validator().validate_trace_file(out) == []


def test_trace_engine_rejects_large_models(capsys, tmp_path):
    assert main(["trace", "--model", "opt-175b",
                 "--out", str(tmp_path / "big.trace.json")]) == 1
    assert "too large" in capsys.readouterr().err


def test_sweep(capsys, tmp_path):
    out_json = tmp_path / "sweep.json"
    assert main(["sweep", "--model", "opt-30b", "--system", "spr-a100",
                 "--batches", "1", "16", "--input-lens", "32",
                 "--output-lens", "8", "--workers", "2",
                 "--json", str(out_json)]) == 0
    out = capsys.readouterr().out
    assert "2 grid points" in out  # 2 batches x 1 len x 1 len
    assert "opt-30b on spr-a100" in out
    assert "cache layer_latency" in out
    import json

    payload = json.loads(out_json.read_text())
    assert payload["model"] == "opt-30b"
    assert len(payload["rows"]) == 2
    assert all(row["latency_s"] > 0 for row in payload["rows"])


def test_faults_list_presets(capsys):
    assert main(["faults", "--list-presets"]) == 0
    out = capsys.readouterr().out
    assert "pcie-downshift" in out
    assert "noisy-neighbor" in out


def test_faults_preset_run_writes_trace_and_report(capsys, tmp_path):
    import json

    trace = tmp_path / "faults.trace.json"
    report = tmp_path / "faults.json"
    assert main(["faults", "--preset", "noisy-neighbor",
                 "--model", "opt-30b", "--system", "spr-a100",
                 "--requests", "12", "--out", str(trace),
                 "--json", str(report)]) == 0
    out = capsys.readouterr().out
    assert "scenario noisy-neighbor" in out
    assert "fault events" in out
    assert _load_trace_validator().validate_trace_file(trace) == []
    payload = json.loads(report.read_text())
    assert payload["scenario"]["name"] == "noisy-neighbor"
    assert payload["fault_stats"]["policy_resolves"] > 0
    assert payload["percentiles"]["p99"] >= payload["percentiles"]["p50"]
    metrics = json.loads((tmp_path / "faults.metrics.json").read_text())
    names = {row["metric"] for row in metrics["metrics"]}
    assert any(name.startswith("faults.") for name in names)


def test_faults_scenario_file(capsys, tmp_path):
    import json

    spec_path = tmp_path / "scenario.json"
    spec_path.write_text(json.dumps({
        "name": "file-scenario", "seed": 11,
        "events": [{"kind": "pcie-downshift", "magnitude": 0.5,
                    "start": 0.0}]}))
    assert main(["faults", "--scenario", str(spec_path),
                 "--requests", "4"]) == 0
    assert "scenario file-scenario" in capsys.readouterr().out


def test_faults_without_scenario_matches_fault_free(capsys):
    """No scenario: the faults command takes the plain serving path
    and reports the exact fault-free numbers."""
    assert main(["faults", "--requests", "6"]) == 0
    plain = capsys.readouterr().out
    assert "(fault-free)" in plain
    assert "fault events" not in plain
    # Idle scenario file: same numbers, bit for bit.
    import json
    import tempfile

    with tempfile.NamedTemporaryFile("w", suffix=".json",
                                     delete=False) as handle:
        json.dump({"name": "armed-idle", "seed": 1, "events": []},
                  handle)
        path = handle.name
    assert main(["faults", "--scenario", path, "--requests", "6"]) == 0
    idle = capsys.readouterr().out
    strip = lambda text: [line for line in text.splitlines()
                          if line.lstrip().startswith(("p50", "p95",
                                                       "p99",
                                                       "makespan"))]
    assert strip(plain) == strip(idle)


def test_monitor_writes_all_exports(capsys, tmp_path):
    import json

    trace = tmp_path / "monitor.trace.json"
    csv_path = tmp_path / "monitor.csv"
    html = tmp_path / "monitor.html"
    report = tmp_path / "monitor.json"
    assert main(["monitor", "--model", "opt-30b",
                 "--num-requests", "400", "--rate", "0.2",
                 "--windows", "32", "--out", str(trace),
                 "--csv", str(csv_path), "--html", str(html),
                 "--json", str(report)]) == 0
    out = capsys.readouterr().out
    assert "monitored 400 requests" in out
    assert "SLO threshold" in out and "auto: 1.25 x p95" in out
    assert _load_trace_validator().validate_trace_file(trace) == []
    trace_doc = json.loads(trace.read_text())
    counter_names = {event["name"]
                     for event in trace_doc["traceEvents"]
                     if event.get("ph") == "C"}
    assert "serving.queue_depth" in counter_names
    assert html.read_text().startswith("<!DOCTYPE html>")
    lines = csv_path.read_text().splitlines()
    assert len(lines) == 2 + 32  # title comment + header + windows
    payload = json.loads(report.read_text())
    assert payload["monitoring"]["total_requests"] == 400
    assert len(payload["monitoring"]["burn_long"]) == 32
    assert payload["series"]["n_windows"] == 32


def test_monitor_preset_attributes_alerts(capsys):
    assert main(["monitor", "--num-requests", "200", "--rate", "0.2",
                 "--preset", "gpu-pressure", "--windows", "32"]) == 0
    out = capsys.readouterr().out
    assert "scenario     : gpu-pressure" in out
    assert "fault window(s)" in out


def test_monitor_preset_conflicts_with_replicas(capsys):
    assert main(["monitor", "--preset", "gpu-pressure",
                 "--replicas", "2"]) == 1
    assert "degraded loop" in capsys.readouterr().err


def test_faults_preset_and_scenario_conflict(capsys, tmp_path):
    path = tmp_path / "s.json"
    path.write_text("{}")
    assert main(["faults", "--preset", "pcie-flaky",
                 "--scenario", str(path)]) == 1
    assert "mutually exclusive" in capsys.readouterr().err


def test_faults_unknown_preset(capsys):
    assert main(["faults", "--preset", "asteroid"]) == 1
    err = capsys.readouterr().err
    assert "known scenarios" in err and "Traceback" not in err


def test_sweep_exact_matches_fast(capsys):
    assert main(["sweep", "--batches", "1", "--input-lens", "64",
                 "--output-lens", "8", "--decode-eval", "exact"]) == 0
    exact_out = capsys.readouterr().out
    assert main(["sweep", "--batches", "1", "--input-lens", "64",
                 "--output-lens", "8", "--decode-eval", "fast"]) == 0
    fast_out = capsys.readouterr().out
    exact_row = [l for l in exact_out.splitlines() if l.lstrip().startswith("1 ")]
    fast_row = [l for l in fast_out.splitlines() if l.lstrip().startswith("1 ")]
    assert exact_row == fast_row


def test_serve_fixed_fleet(capsys):
    assert main(["serve", "--model", "opt-30b", "--num-requests", "200",
                 "--rate", "0.2", "--replicas", "2"]) == 0
    out = capsys.readouterr().out
    assert "served 200 requests on 2 replica(s)" in out
    assert "p50/p95/p99" in out
    assert "per-replica" in out


def test_serve_json_payload(capsys, tmp_path):
    import json

    path = tmp_path / "serve.json"
    assert main(["serve", "--num-requests", "150", "--rate", "0.3",
                 "--shape", "1,128,16", "--shape", "8,256,32",
                 "--json", str(path)]) == 0
    payload = json.loads(path.read_text())
    assert payload["num_requests"] == 150
    assert payload["shapes"] == [[1, 128, 16], [8, 256, 32]]
    assert payload["percentiles"]["p99"] >= payload["percentiles"]["p50"]
    assert 0.0 < payload["utilization"] <= 1.0
    assert payload["replica_utilizations"]


def test_serve_slo_plans_fleet(capsys):
    assert main(["serve", "--model", "opt-30b", "--num-requests", "120",
                 "--rate", "1.0", "--slo-p95", "60"]) == 0
    out = capsys.readouterr().out
    assert "smallest round-robin fleet" in out
    assert "$" in out


def test_serve_streaming_percentiles(capsys):
    assert main(["serve", "--num-requests", "100", "--rate", "0.5",
                 "--streaming"]) == 0
    assert "(streaming percentiles)" in capsys.readouterr().out


def test_serve_bad_shape_is_clean_error(capsys):
    assert main(["serve", "--shape", "1x128x16"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:") and "Traceback" not in err


def test_fleet_list_presets(capsys):
    assert main(["fleet", "--list-presets"]) == 0
    out = capsys.readouterr().out
    assert "bursty-chaos" in out
    assert "diurnal-autoscale" in out
    assert "chaos scenarios:" in out


def test_fleet_preset_run_writes_json(capsys, tmp_path):
    import json

    payload_path = tmp_path / "fleet.json"
    assert main(["fleet", "--preset", "replica-crash",
                 "--num-requests", "300",
                 "--json", str(payload_path)]) == 0
    out = capsys.readouterr().out
    assert "served/dropped" in out
    assert "availability" in out
    payload = json.loads(payload_path.read_text())
    assert payload["n_served"] + payload["n_dropped"] \
        == payload["n_offered"]
    assert payload["scenario"] == "replica-crash"
    assert len(payload["replica_counts"]) >= 1


def test_fleet_chaos_file_override(capsys, tmp_path):
    import json

    from repro.faults.fleet import fleet_to_dict, get_fleet_scenario

    chaos_path = tmp_path / "chaos.json"
    chaos_path.write_text(json.dumps(
        fleet_to_dict(get_fleet_scenario("gray-failure"))))
    assert main(["fleet", "--preset", "bursty-chaos",
                 "--num-requests", "200",
                 "--chaos", str(chaos_path)]) == 0
    out = capsys.readouterr().out
    assert "chaos gray-failure" in out
