"""scripts/validate_trace.py — counter-track ("C") schema checks.

The validator is stdlib-only and lives outside the package, so it is
loaded by file path (the same pattern tests/test_cli.py uses).  The
golden trace under tests/data/ pins the accepted shape of a
span+counter trace; the mutation tests pin each rejection rule.
"""

import copy
import importlib.util
import json
from pathlib import Path

import pytest

DATA = Path(__file__).resolve().parent / "data"
GOLDEN = DATA / "golden_counter.trace.json"


def _load_validator():
    path = (Path(__file__).resolve().parents[1] / "scripts"
            / "validate_trace.py")
    spec = importlib.util.spec_from_file_location("validate_trace",
                                                  path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def validator():
    return _load_validator()


@pytest.fixture
def golden():
    return json.loads(GOLDEN.read_text())


def test_golden_counter_trace_is_valid(validator):
    assert validator.validate_trace_file(GOLDEN) == []


def test_missing_file_and_bad_json_are_violations(validator,
                                                  tmp_path):
    assert validator.validate_trace_file(tmp_path / "absent.json")
    broken = tmp_path / "broken.json"
    broken.write_text("{not json")
    errors = validator.validate_trace_file(broken)
    assert errors and "invalid JSON" in errors[0]


def _first_counter(document):
    return next(event for event in document["traceEvents"]
                if event["ph"] == "C")


@pytest.mark.parametrize("mutate,fragment", [
    (lambda e: e.update(ts=-1.0), "must be >= 0"),
    (lambda e: e.update(ts=float("nan")), "must be finite"),
    (lambda e: e.update(pid="main"), "'pid' must be an int"),
    (lambda e: e.update(args={}), "non-empty"),
    (lambda e: e.pop("args"), "non-empty"),
    (lambda e: e.update(args={"value": float("inf")}),
     "finite number"),
    (lambda e: e.update(args={"value": "high"}), "finite number"),
    (lambda e: e.update(args={"value": True}), "finite number"),
    (lambda e: e.update(name=""), "empty 'name'"),
])
def test_counter_violations_are_rejected(validator, golden, mutate,
                                         fragment):
    document = copy.deepcopy(golden)
    mutate(_first_counter(document))
    errors = validator.validate_trace_object(document)
    assert errors, "mutated counter event must be rejected"
    assert any(fragment in message for message in errors)


def test_counter_rejections_name_the_event_index(validator, golden):
    document = copy.deepcopy(golden)
    _first_counter(document)["ts"] = -5
    (error,) = validator.validate_trace_object(document)
    assert error.startswith("traceEvents[3]")


def test_exported_counter_tracks_validate(validator, tmp_path):
    # End to end: the real exporter's counter events pass the real
    # validator (NaN percentile samples are skipped, not emitted).
    import numpy as np

    from repro.telemetry import (build_chrome_trace,
                                 timeseries_to_counter_events)
    from repro.telemetry.timeseries import (WindowGrid,
                                            compute_timeseries)

    arrivals = np.array([0.0, 1.0, 2.0, 30.0])
    finishes = arrivals + 0.5
    grid = WindowGrid(t0=0.0, window_s=8.0, n_windows=4)
    series = compute_timeseries(arrivals, arrivals, finishes,
                                grid=grid, percentile_stride=1)
    # Window 2 finished nothing: its percentile sample is NaN and
    # must be absent from the counter track, not emitted as NaN.
    assert np.isnan(series.percentile(0.95)[2])
    events = timeseries_to_counter_events(series)
    path = tmp_path / "counters.trace.json"
    path.write_text(json.dumps(build_chrome_trace(events)))
    assert validator.validate_trace_file(path) == []
