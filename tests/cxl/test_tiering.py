"""§6 memory-offloading policy."""

import pytest

from repro.core.config import LiaConfig
from repro.cxl.tiering import (
    CxlTieringPlan,
    max_batch_with_and_without_cxl,
    plan_tiering,
)
from repro.errors import ConfigurationError
from repro.models.workload import InferenceRequest
from repro.models.zoo import get_model


@pytest.fixture
def cxl_system(spr_a100):
    return spr_a100.with_cxl(n_expanders=2)


def test_plan_moves_weights_only(opt_30b, cxl_system):
    request = InferenceRequest(900, 32, 32)
    plan = plan_tiering(opt_30b, request, cxl_system)
    assert plan.weights_to_cxl
    assert plan.cxl_bytes == pytest.approx(opt_30b.total_param_bytes)
    assert plan.ddr_bytes < plan.ddr_bytes_without_cxl


def test_table3_offloaded_percentage(opt_30b, cxl_system):
    # Table 3: ~43 % of DDR usage moves to CXL at L_out=32, shrinking
    # to ~14 % at L_out=256 (KV grows with output length).
    short = plan_tiering(opt_30b, InferenceRequest(900, 32, 32),
                         cxl_system)
    long = plan_tiering(opt_30b, InferenceRequest(900, 32, 256),
                        cxl_system)
    assert 0.3 <= short.ddr_savings_fraction <= 0.55
    assert 0.08 <= long.ddr_savings_fraction <= 0.25
    assert long.ddr_savings_fraction < short.ddr_savings_fraction


def test_requires_cxl_system(opt_30b, spr_a100):
    with pytest.raises(ConfigurationError, match="no CXL"):
        plan_tiering(opt_30b, InferenceRequest(64, 32, 32), spr_a100)


def test_max_batch_increases_with_cxl(opt_30b, spr_a100):
    # Table 3 / abstract: CXL offloading raises the feasible batch by
    # up to ~1.76x.
    without, with_cxl = max_batch_with_and_without_cxl(
        opt_30b, spr_a100, input_len=1024, output_len=32)
    assert with_cxl > without
    assert 1.1 <= with_cxl / without <= 2.2


def test_savings_fraction_zero_baseline():
    plan = CxlTieringPlan(weights_to_cxl=True, ddr_bytes=0.0,
                          cxl_bytes=1.0, ddr_bytes_without_cxl=0.0)
    assert plan.ddr_savings_fraction == 0.0


def test_adaptive_config_follows_decode_policy(opt_30b, cxl_system,
                                               eval_config):
    from repro.core.config import WeightPlacement
    from repro.cxl.tiering import adaptive_config

    small = adaptive_config(opt_30b, InferenceRequest(1, 256, 32),
                            cxl_system, eval_config)
    assert small.weight_placement is WeightPlacement.DDR
    # Above the decode threshold the parameter sublayers run on the
    # GPU, so the weights move to CXL.
    large = adaptive_config(opt_30b, InferenceRequest(2048, 256, 32),
                            cxl_system, eval_config)
    assert large.weight_placement is WeightPlacement.CXL


def test_adaptive_config_forced_by_capacity(opt_30b, cxl_system):
    from repro.core.config import LiaConfig, WeightPlacement
    from repro.cxl.tiering import adaptive_config

    # Below the policy threshold but KV too big for DDR alone:
    # capacity forces the CXL placement.
    request = InferenceRequest(400, 2000, 16)
    config = adaptive_config(opt_30b, request, cxl_system, LiaConfig())
    assert config.weight_placement is WeightPlacement.CXL


def test_adaptive_config_noop_without_cxl(opt_30b, spr_a100):
    from repro.core.config import LiaConfig, WeightPlacement
    from repro.cxl.tiering import adaptive_config

    config = adaptive_config(opt_30b, InferenceRequest(2048, 256, 32),
                             spr_a100, LiaConfig())
    assert config.weight_placement is WeightPlacement.DDR
