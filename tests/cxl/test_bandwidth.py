"""Fig. 8 CXL characterization."""

import pytest

from repro.cxl.bandwidth import (
    cpu_throughput_degradation,
    transfer_bandwidth_series,
)
from repro.errors import ConfigurationError
from repro.hardware.interconnect import get_link
from repro.hardware.memory import ddr_subsystem
from repro.hardware.system import get_system
from repro.models.sublayers import Stage, Sublayer
from repro.models.zoo import get_model
from repro.units import mb


@pytest.fixture
def cxl_system(spr_a100):
    return spr_a100.with_cxl(n_expanders=2)


def test_two_expanders_reach_ddr_parity_at_300mb():
    # Observation-1 / Fig. 8(a).
    link = get_link("pcie4")
    ddr = ddr_subsystem("ddr", 8, 4800, 512)
    series = transfer_bandwidth_series(link, [mb(300)], ddr)
    assert series["cxl-x2"][0] == pytest.approx(series["ddr"][0],
                                                rel=0.02)


def test_single_expander_throttles():
    link = get_link("pcie4")
    ddr = ddr_subsystem("ddr", 8, 4800, 512)
    series = transfer_bandwidth_series(link, [mb(300)], ddr)
    assert series["cxl-x1"][0] < 0.65 * series["ddr"][0]


def test_bandwidth_ramps_with_size():
    link = get_link("pcie4")
    ddr = ddr_subsystem("ddr", 8, 4800, 512)
    series = transfer_bandwidth_series(link, [mb(1), mb(64), mb(600)],
                                       ddr)
    for rates in series.values():
        assert rates == sorted(rates)


def test_empty_sizes_rejected():
    link = get_link("pcie4")
    ddr = ddr_subsystem("ddr", 8, 4800, 512)
    with pytest.raises(ConfigurationError):
        transfer_bandwidth_series(link, [], ddr)


def test_sublayer2_degrades_more_than_sublayer1(cxl_system):
    # Observation-2 / Fig. 8(b): the ops/byte ~ 1 sublayer suffers
    # more from CXL placement.
    spec = get_model("opt-175b")
    batches = [64]
    s1 = cpu_throughput_degradation(cxl_system, spec,
                                    Sublayer.QKV_MAPPING, Stage.DECODE,
                                    batches, 256)[0]
    s2 = cpu_throughput_degradation(cxl_system, spec,
                                    Sublayer.ATTENTION_SCORE,
                                    Stage.DECODE, batches, 256)[0]
    assert s2 < s1
    assert 0.05 <= s2 <= 0.5  # 50-95 % degradation
    assert s1 <= 1.0


def test_degradation_ranges_match_paper(cxl_system):
    # Fig. 8(b): sublayer 1 degrades 11-70 %, sublayer 2 10-82 %.
    spec = get_model("opt-175b")
    batches = [1, 8, 64, 512]
    s1 = cpu_throughput_degradation(cxl_system, spec,
                                    Sublayer.QKV_MAPPING,
                                    Stage.PREFILL, batches, 256)
    # Compute-bound at large B*L: degradation shrinks.
    assert s1[-1] > s1[0]
    assert s1[-1] > 0.5


def test_prefill_sublayer1_degradation_shrinks_with_bl(cxl_system):
    spec = get_model("opt-175b")
    ratios = cpu_throughput_degradation(cxl_system, spec,
                                        Sublayer.QKV_MAPPING,
                                        Stage.PREFILL,
                                        [1, 16, 256], 512)
    assert ratios == sorted(ratios)
