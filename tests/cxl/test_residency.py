"""Property tests for the tiered KV-residency ledger.

The two invariants the module docstring commits to — per-tier bytes
never exceed capacity, and admission/demotion/eviction conserve bytes
— are driven here with hypothesis over random capacity triples and
random admit/release interleavings.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.cxl.residency import (
    KV_TIERS,
    KvResidency,
    KvTierCapacities,
    kv_capacities_from_system,
)
from repro.errors import ConfigurationError
from repro.hardware.system import get_system
from repro.models.zoo import get_model

GB = 1e9

capacity_triples = st.tuples(
    st.floats(min_value=0.0, max_value=64.0),
    st.floats(min_value=0.0, max_value=256.0),
    st.floats(min_value=0.0, max_value=512.0),
).map(lambda gbs: KvTierCapacities(*(value * GB for value in gbs)))

#: (request_id, kv_bytes) admission candidates; sizes span tiny to
#: bigger-than-HBM so the waterfall and demotion paths both trigger.
admissions = st.lists(
    st.floats(min_value=1e6, max_value=128.0 * GB),
    min_size=1, max_size=24)

#: Interleaving pattern: after each admission, release the oldest
#: live request whenever the corresponding draw says so.
release_flags = st.lists(st.booleans(), min_size=24, max_size=24)


@settings(max_examples=80, deadline=None)
@given(capacities=capacity_triples, sizes=admissions,
       flags=release_flags)
def test_invariants_hold_under_random_interleavings(capacities, sizes,
                                                    flags):
    residency = KvResidency(capacities)
    live = []
    for i, (nbytes, release_one) in enumerate(zip(sizes, flags)):
        if residency.admit(i, nbytes):
            live.append(i)
        residency.check_invariants()
        if release_one and live:
            freed = residency.release(live.pop(0))
            assert freed >= 0.0
            residency.check_invariants()
    # Admission succeeds iff the tiers combined had room — re-check
    # against the ledger: total used never exceeds total capacity.
    assert residency.total_used <= capacities.total_bytes * (1 + 1e-12)


@settings(max_examples=60, deadline=None)
@given(capacities=capacity_triples, sizes=admissions)
def test_admission_then_full_drain_conserves_bytes(capacities, sizes):
    residency = KvResidency(capacities)
    admitted_bytes = {}
    for i, nbytes in enumerate(sizes):
        if residency.admit(i, nbytes):
            admitted_bytes[i] = nbytes
    residency.check_invariants()
    for i, nbytes in admitted_bytes.items():
        freed = residency.release(i)
        # Demotion moves bytes between tiers but never changes a
        # request's total; eviction returns exactly what went in.
        assert math.isclose(freed, nbytes, rel_tol=1e-9, abs_tol=1e-3)
    assert residency.n_resident == 0
    for tier in KV_TIERS:
        assert residency.used(tier) <= 1e-3  # float dust only


@settings(max_examples=60, deadline=None)
@given(capacities=capacity_triples,
       nbytes=st.floats(min_value=1e6, max_value=1024.0 * GB))
def test_admit_rejects_iff_combined_tiers_lack_room(capacities,
                                                    nbytes):
    residency = KvResidency(capacities)
    expected = nbytes <= capacities.total_bytes
    assert residency.admit(0, nbytes) == expected
    if not expected:
        # A False return changes nothing.
        assert residency.total_used == 0.0
        assert residency.n_resident == 0


def test_waterfall_prefers_fast_tiers_in_order():
    residency = KvResidency(KvTierCapacities(4 * GB, 8 * GB, 16 * GB))
    assert residency.admit(0, 10 * GB)
    allocation = residency.allocation(0)
    assert allocation["hbm"] == pytest.approx(4 * GB)
    assert allocation["ddr"] == pytest.approx(6 * GB)
    assert "cxl" not in allocation
    residency.check_invariants()


def test_new_sequence_demotes_coldest_resident_from_hbm():
    residency = KvResidency(KvTierCapacities(4 * GB, 4 * GB, 16 * GB))
    assert residency.admit(0, 4 * GB)        # fills HBM
    assert residency.admit(1, 4 * GB)        # demotes request 0 down
    assert residency.demotions == 1
    assert residency.demoted_bytes == pytest.approx(4 * GB)
    assert residency.allocation(0) == {"ddr": pytest.approx(4 * GB)}
    assert residency.allocation(1)["hbm"] == pytest.approx(4 * GB)
    # The next admission demotes again — DDR is full now, so request
    # 1's HBM bytes cascade to CXL and the newest sequence still gets
    # the fast tier.
    assert residency.admit(2, 4 * GB)
    assert residency.allocation(2) == {"hbm": pytest.approx(4 * GB)}
    assert residency.allocation(1) == {"cxl": pytest.approx(4 * GB)}
    assert residency.demotions == 2
    assert residency.cxl_fraction(1) == pytest.approx(1.0)
    assert residency.cxl_fraction(2) == 0.0
    residency.check_invariants()


def test_release_restores_room_for_later_admissions():
    residency = KvResidency(KvTierCapacities(2 * GB, 2 * GB, 0.0))
    assert residency.admit(0, 4 * GB)
    assert not residency.admit(1, 1 * GB)
    assert residency.release(0) == pytest.approx(4 * GB)
    assert residency.admit(1, 4 * GB)
    residency.check_invariants()


def test_ledger_misuse_is_a_clean_error():
    residency = KvResidency(KvTierCapacities.unbounded())
    assert residency.admit(7, GB)
    with pytest.raises(ConfigurationError, match="already holds"):
        residency.admit(7, GB)
    with pytest.raises(ConfigurationError, match="no KV allocation"):
        residency.release(8)
    with pytest.raises(ConfigurationError, match="no KV allocation"):
        residency.allocation(8)
    with pytest.raises(ConfigurationError, match="unknown KV tier"):
        residency.used("nvme")
    with pytest.raises(ConfigurationError, match=">= 0"):
        residency.admit(9, -1.0)
    with pytest.raises(ConfigurationError, match=">= 0"):
        KvTierCapacities(-1.0, 0.0, 0.0)


def test_unbounded_never_blocks():
    residency = KvResidency(KvTierCapacities.unbounded())
    for i in range(32):
        assert residency.admit(i, 100 * GB)
    residency.check_invariants()
    assert residency.n_resident == 32


def test_capacities_from_system_follow_section6_placement():
    spec = get_model("opt-30b")
    base = get_system("spr-a100")
    weights = float(spec.total_param_bytes)

    plain = kv_capacities_from_system(spec, base)
    assert plain.hbm_bytes == pytest.approx(
        0.5 * float(base.gpu.memory_capacity))
    # No expanders: weights stay in DDR and shrink the KV budget.
    assert plain.cxl_bytes == 0.0
    assert plain.ddr_bytes == pytest.approx(
        float(base.cpu.memory.capacity_bytes) - weights)

    cxl_system = base.with_cxl()
    tiered = kv_capacities_from_system(spec, cxl_system)
    # With expanders the §6 policy moves weights to CXL: DDR is all
    # KV, the expander pool is charged for the weights.
    assert tiered.ddr_bytes == pytest.approx(
        float(cxl_system.cpu.memory.capacity_bytes))
    assert tiered.cxl_bytes == pytest.approx(
        float(cxl_system.cxl_pool.capacity_bytes) - weights)

    with pytest.raises(ConfigurationError, match="no CXL expanders"):
        kv_capacities_from_system(spec, base, weights_in_cxl=True)
    with pytest.raises(ConfigurationError, match="hbm_kv_fraction"):
        kv_capacities_from_system(spec, base, hbm_kv_fraction=1.5)
