"""Tiered memory allocator."""

import pytest

from repro.cxl.allocator import TieredAllocator
from repro.errors import CapacityError, ConfigurationError
from repro.hardware.memory import cxl_expander, ddr_subsystem


@pytest.fixture
def allocator():
    alloc = TieredAllocator()
    alloc.add_pool(ddr_subsystem("ddr", 8, 4800, capacity_gib=512))
    alloc.add_pool(cxl_expander("cxl", capacity_gib=128))
    return alloc


def test_allocate_and_account(allocator):
    allocator.allocate("weights", "cxl", 100 * 2**30)
    assert allocator.used("cxl") == 100 * 2**30
    assert allocator.free("cxl") == 28 * 2**30
    assert allocator.used("ddr") == 0.0
    assert allocator.utilization("cxl") == pytest.approx(100 / 128)


def test_over_commit_refused(allocator):
    with pytest.raises(CapacityError) as exc:
        allocator.allocate("weights", "cxl", 200 * 2**30)
    assert exc.value.requested == 200 * 2**30
    assert exc.value.device == "cxl"


def test_over_commit_across_allocations(allocator):
    allocator.allocate("a", "cxl", 100 * 2**30)
    with pytest.raises(CapacityError):
        allocator.allocate("b", "cxl", 30 * 2**30)


def test_release_frees_capacity(allocator):
    allocator.allocate("a", "cxl", 100 * 2**30)
    allocator.release("a")
    allocator.allocate("b", "cxl", 120 * 2**30)
    assert allocator.used("cxl") == 120 * 2**30


def test_duplicate_label_rejected(allocator):
    allocator.allocate("a", "ddr", 1)
    with pytest.raises(ConfigurationError, match="duplicate"):
        allocator.allocate("a", "cxl", 1)


def test_unknown_pool_rejected(allocator):
    with pytest.raises(ConfigurationError, match="unknown pool"):
        allocator.allocate("a", "hbm", 1)


def test_unknown_release_rejected(allocator):
    with pytest.raises(ConfigurationError, match="unknown allocation"):
        allocator.release("nope")


def test_allocations_listing(allocator):
    allocator.allocate("kv", "ddr", 10)
    allocator.allocate("weights", "cxl", 20)
    assert [a.label for a in allocator.allocations()] == ["kv", "weights"]
    assert [a.label for a in allocator.allocations("cxl")] == ["weights"]
    assert allocator.allocation("kv").pool == "ddr"


def test_duplicate_pool_rejected(allocator):
    with pytest.raises(ConfigurationError, match="duplicate pool"):
        allocator.add_pool(cxl_expander("cxl"))


def test_negative_allocation_rejected(allocator):
    with pytest.raises(ConfigurationError):
        allocator.allocate("a", "ddr", -1)
