"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import LiaConfig
from repro.hardware.system import get_system
from repro.models.workload import InferenceRequest
from repro.models.zoo import get_model


@pytest.fixture
def opt_175b():
    return get_model("opt-175b")


@pytest.fixture
def opt_30b():
    return get_model("opt-30b")


@pytest.fixture
def tiny_spec():
    return get_model("opt-tiny")


@pytest.fixture
def spr_a100():
    return get_system("spr-a100")


@pytest.fixture
def spr_h100():
    return get_system("spr-h100")


@pytest.fixture
def gnr_a100():
    return get_system("gnr-a100")


@pytest.fixture
def eval_config():
    """Paper-style configuration: starred points allowed beyond the
    512 GB testbed."""
    return LiaConfig(enforce_host_capacity=False)


@pytest.fixture
def online_request():
    return InferenceRequest(batch_size=1, input_len=256, output_len=32)


@pytest.fixture
def offline_request():
    return InferenceRequest(batch_size=64, input_len=256, output_len=32)
