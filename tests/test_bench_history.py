"""scripts/bench_history.py — the bench-trajectory tracker.

Loaded by file path like the trace validator; everything runs
through ``main`` so the tests cover the CLI surface CI calls.
"""

import importlib.util
import json
from pathlib import Path

import pytest


def _load_tracker():
    path = (Path(__file__).resolve().parents[1] / "scripts"
            / "bench_history.py")
    spec = importlib.util.spec_from_file_location("bench_history",
                                                  path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def tracker():
    return _load_tracker()


def _serving_report(speedup=80.0, overhead=0.05, quick=False,
                    passed=True, degraded_speedup=40.0,
                    degraded_identical=True, fleet_availability=1.0,
                    fleet_deterministic=True, fleet_loses=True,
                    scheduler_ratio=2.2, scheduler_deterministic=True,
                    scheduler_degenerate=True):
    return {
        "benchmark": "bench_serving",
        "workload": {"n_requests": 1_000_000},
        "speedup_mean": speedup,
        "speedup_cold": speedup * 0.9,
        "bit_identical": True,
        "timeseries": {"overhead_fraction": overhead},
        "degraded": {"speedup_mean": degraded_speedup,
                     "bit_identical": degraded_identical},
        "fleet": {"availability": fleet_availability,
                  "deterministic": fleet_deterministic,
                  "ablation": {"strictly_loses": fleet_loses}},
        "scheduler": {
            "throughput_ratio": scheduler_ratio,
            "deterministic": scheduler_deterministic,
            "fifo_degenerate_identical": scheduler_degenerate},
        "gates": {"speedup_mean_min": None if quick else 50.0,
                  "bit_identical": True,
                  "timeseries_overhead_max": None if quick else 0.10,
                  "degraded_speedup_mean_min": None if quick else 20.0,
                  "degraded_bit_identical": True,
                  "fleet_availability_min": 0.99,
                  "fleet_deterministic": True,
                  "scheduler_throughput_ratio_min": 1.3,
                  "scheduler_deterministic": True,
                  "scheduler_fifo_degenerate_identical": True},
        "pass": passed,
    }


def _write(path, document):
    path.write_text(json.dumps(document))
    return str(path)


def test_append_then_check_roundtrip(tracker, tmp_path):
    history = tmp_path / "history.jsonl"
    run = _write(tmp_path / "run.json", _serving_report())
    assert tracker.main(["append", str(history), run,
                         "--source", "test", "--commit", "abc123",
                         "--timestamp", "2026-08-08T00:00:00+00:00"
                         ]) == 0
    (line,) = history.read_text().splitlines()
    entry = json.loads(line)
    assert entry["benchmark"] == "bench_serving"
    assert entry["speedup_mean"] == 80.0
    assert entry["timeseries_overhead"] == 0.05
    assert entry["degraded_speedup_mean"] == 40.0
    assert entry["degraded_bit_identical"] is True
    assert entry["scheduler_throughput_ratio"] == 2.2
    assert entry["scheduler_deterministic"] is True
    assert entry["scheduler_fifo_degenerate_identical"] is True
    assert entry["commit"] == "abc123"
    assert entry["quick"] is False
    assert tracker.main(["check", str(history),
                         "--committed", run]) == 0


def test_check_flags_speedup_regression(tracker, tmp_path, capsys):
    history = tmp_path / "history.jsonl"
    committed = _write(tmp_path / "committed.json",
                       _serving_report(speedup=80.0))
    regressed = _write(tmp_path / "regressed.json",
                       _serving_report(speedup=20.0))
    tracker.main(["append", str(history), regressed,
                  "--commit", ""])
    assert tracker.main(["check", str(history),
                         "--committed", committed]) == 1
    assert "speedup 20.0x under" in capsys.readouterr().err
    # Quick mode only holds the sanity floor, which 20x clears.
    assert tracker.main(["check", str(history),
                         "--committed", committed, "--quick"]) == 0


def test_check_flags_degraded_speedup_regression(tracker, tmp_path,
                                                 capsys):
    history = tmp_path / "history.jsonl"
    committed = _write(tmp_path / "committed.json",
                       _serving_report())
    regressed = _write(tmp_path / "regressed.json",
                       _serving_report(degraded_speedup=12.0))
    tracker.main(["append", str(history), regressed, "--commit", ""])
    assert tracker.main(["check", str(history),
                         "--committed", committed]) == 1
    assert "degraded speedup 12.0x under" in capsys.readouterr().err
    # 12x clears the quick-mode sanity floor.
    assert tracker.main(["check", str(history),
                         "--committed", committed, "--quick"]) == 0


def test_check_flags_degraded_identity_break(tracker, tmp_path,
                                             capsys):
    history = tmp_path / "history.jsonl"
    committed = _write(tmp_path / "committed.json",
                       _serving_report())
    broken = _write(tmp_path / "broken.json",
                    _serving_report(degraded_identical=False))
    tracker.main(["append", str(history), broken, "--commit", ""])
    # Identity is not a wall-clock gate: it binds even in quick mode.
    assert tracker.main(["check", str(history),
                         "--committed", committed, "--quick"]) == 1
    assert "degraded engines" in capsys.readouterr().err


def test_check_flags_fleet_availability_regression(tracker, tmp_path,
                                                   capsys):
    history = tmp_path / "history.jsonl"
    committed = _write(tmp_path / "committed.json",
                       _serving_report())
    lossy = _write(tmp_path / "lossy.json",
                   _serving_report(fleet_availability=0.95))
    tracker.main(["append", str(history), lossy, "--commit", ""])
    # Availability is a correctness gate: it binds in quick mode too.
    assert tracker.main(["check", str(history),
                         "--committed", committed, "--quick"]) == 1
    assert "fleet availability" in capsys.readouterr().err


def test_check_flags_fleet_nondeterminism_and_vacuous_ablation(
        tracker, tmp_path, capsys):
    history = tmp_path / "history.jsonl"
    committed = _write(tmp_path / "committed.json",
                       _serving_report())
    flaky = _write(tmp_path / "flaky.json",
                   _serving_report(fleet_deterministic=False,
                                   fleet_loses=False))
    tracker.main(["append", str(history), flaky, "--commit", ""])
    assert tracker.main(["check", str(history),
                         "--committed", committed, "--quick"]) == 1
    err = capsys.readouterr().err
    assert "not deterministic" in err
    assert "load-bearing" in err


def test_check_flags_scheduler_throughput_regression(tracker,
                                                     tmp_path,
                                                     capsys):
    history = tmp_path / "history.jsonl"
    committed = _write(tmp_path / "committed.json",
                       _serving_report())
    slow = _write(tmp_path / "slow.json",
                  _serving_report(scheduler_ratio=1.1))
    tracker.main(["append", str(history), slow, "--commit", ""])
    # The ratio is tokens per *simulated* second — a correctness-ish
    # gate that binds in quick mode too.
    assert tracker.main(["check", str(history),
                         "--committed", committed, "--quick"]) == 1
    assert "scheduler throughput 1.10x" in capsys.readouterr().err


def test_check_flags_scheduler_determinism_and_degenerate_break(
        tracker, tmp_path, capsys):
    history = tmp_path / "history.jsonl"
    committed = _write(tmp_path / "committed.json",
                       _serving_report())
    broken = _write(tmp_path / "broken.json",
                    _serving_report(scheduler_deterministic=False,
                                    scheduler_degenerate=False))
    tracker.main(["append", str(history), broken, "--commit", ""])
    assert tracker.main(["check", str(history),
                         "--committed", committed, "--quick"]) == 1
    err = capsys.readouterr().err
    assert "scheduler run is not deterministic" in err
    assert "FIFO-degenerate" in err


def test_check_flags_overhead_regression_full_mode_only(
        tracker, tmp_path, capsys):
    history = tmp_path / "history.jsonl"
    committed = _write(tmp_path / "committed.json",
                       _serving_report())
    bloated = _write(tmp_path / "bloated.json",
                     _serving_report(overhead=0.25))
    tracker.main(["append", str(history), bloated, "--commit", ""])
    assert tracker.main(["check", str(history),
                         "--committed", committed]) == 1
    assert "overhead" in capsys.readouterr().err
    assert tracker.main(["check", str(history),
                         "--committed", committed, "--quick"]) == 0


def _estimator_report(sweep_speedup=4.0, sweep_identical=True,
                      cpu_count=8, passed=True):
    return {
        "benchmark": "bench_estimator",
        "speedup_mean": 80.0,
        "speedup_cold": 5.0,
        "max_relative_error": 1e-14,
        "process_sweep": {"speedup": sweep_speedup,
                          "identical": sweep_identical,
                          "cpu_count": cpu_count},
        "gates": {"speedup_mean_min": 10.0,
                  "max_relative_error_max": 1e-9,
                  "process_sweep_speedup_min": 3.0,
                  "process_sweep_min_cores": 4},
        "pass": passed,
    }


def test_check_flags_process_sweep_identity_break_even_quick(
        tracker, tmp_path, capsys):
    history = tmp_path / "history.jsonl"
    committed = _write(tmp_path / "committed.json",
                       _estimator_report())
    broken = _write(tmp_path / "broken.json",
                    _estimator_report(sweep_identical=False))
    tracker.main(["append", str(history), broken, "--commit", ""])
    assert tracker.main(["check", str(history),
                         "--committed", committed, "--quick"]) == 1
    assert "not bit-identical to the thread path" in \
        capsys.readouterr().err


def test_check_flags_process_sweep_speedup_regression_in_quick(
        tracker, tmp_path, capsys):
    history = tmp_path / "history.jsonl"
    committed = _write(tmp_path / "committed.json",
                       _estimator_report())
    slow = _write(tmp_path / "slow.json",
                  _estimator_report(sweep_speedup=1.2, cpu_count=8))
    tracker.main(["append", str(history), slow, "--commit", ""])
    # The floor binds in --quick: the benchmark's thread baseline and
    # process pool race on the same machine, so noise cancels.
    assert tracker.main(["check", str(history),
                         "--committed", committed, "--quick"]) == 1
    assert "process-sweep speedup 1.20x under" in \
        capsys.readouterr().err


def test_process_sweep_speedup_floor_skipped_on_small_machines(
        tracker, tmp_path):
    history = tmp_path / "history.jsonl"
    committed = _write(tmp_path / "committed.json",
                       _estimator_report())
    small = _write(tmp_path / "small.json",
                   _estimator_report(sweep_speedup=1.0, cpu_count=1))
    tracker.main(["append", str(history), small, "--commit", ""])
    # One core cannot fan out; only identity binds there.
    assert tracker.main(["check", str(history),
                         "--committed", committed]) == 0
    assert tracker.main(["check", str(history),
                         "--committed", committed, "--quick"]) == 0


def test_check_latest_entry_wins_and_failed_runs_flagged(
        tracker, tmp_path, capsys):
    history = tmp_path / "history.jsonl"
    committed = _write(tmp_path / "committed.json",
                       _serving_report())
    good = _write(tmp_path / "good.json", _serving_report())
    bad = _write(tmp_path / "bad.json",
                 _serving_report(passed=False))
    tracker.main(["append", str(history), good, "--commit", ""])
    tracker.main(["append", str(history), bad, "--commit", ""])
    assert tracker.main(["check", str(history),
                         "--committed", committed]) == 1
    assert "pass=false" in capsys.readouterr().err


def test_check_requires_history_entry_per_benchmark(
        tracker, tmp_path, capsys):
    history = tmp_path / "history.jsonl"
    serving = _write(tmp_path / "serving.json", _serving_report())
    other = _write(tmp_path / "other.json",
                   {"benchmark": "bench_estimator", "pass": True,
                    "gates": {}})
    tracker.main(["append", str(history), serving, "--commit", ""])
    assert tracker.main(["check", str(history),
                         "--committed", serving,
                         "--committed", other]) == 1
    assert "no history entry" in capsys.readouterr().err


def test_check_empty_or_corrupt_history_fails(tracker, tmp_path,
                                              capsys):
    history = tmp_path / "missing.jsonl"
    committed = _write(tmp_path / "committed.json",
                       _serving_report())
    assert tracker.main(["check", str(history),
                         "--committed", committed]) == 1
    assert "no history entries" in capsys.readouterr().err
    history.write_text("{broken\n")
    with pytest.raises(SystemExit):
        tracker.main(["check", str(history),
                      "--committed", committed])


def test_committed_history_gates_committed_reports(tracker):
    # The repo's own trajectory must pass its own gates.
    root = Path(__file__).resolve().parents[1]
    assert tracker.main(
        ["check", str(root / "BENCH_history.jsonl"),
         "--committed", str(root / "BENCH_serving.json"),
         "--committed", str(root / "BENCH_estimator.json")]) == 0
