"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import LiaConfig
from repro.core.latency import layer_latency
from repro.core.optimizer import optimal_policy
from repro.core.overlap import (
    build_stage_graph,
    overlapped_layer_time,
    serial_layer_time,
)
from repro.core.policy import OffloadPolicy
from repro.hardware.roofline import ComputeEngine, EfficiencyCurve
from repro.hardware.system import get_system
from repro.kernels.amx import amx_gemm
from repro.kernels.quant import bf16_matmul_reference, bf16_round
from repro.models.sublayers import Stage, Sublayer, sublayer_cost
from repro.models.zoo import get_model
from repro.sim.engine import simulate

CONFIG = LiaConfig(enforce_host_capacity=False)

policies = st.tuples(*([st.integers(0, 1)] * 6)).map(OffloadPolicy)
batches = st.integers(min_value=1, max_value=2048)
lengths = st.integers(min_value=1, max_value=2048)
stages = st.sampled_from(list(Stage))


# ----------------------------------------------------------------------
# Latency-model invariants
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(policy=policies, batch=batches, length=lengths, stage=stages)
def test_layer_latency_positive_and_decomposes(policy, batch, length,
                                               stage):
    spec = get_model("opt-175b")
    system = get_system("spr-a100")
    layer = layer_latency(spec, stage, policy, batch, length, system,
                          CONFIG)
    assert layer.total > 0.0
    assert layer.total == pytest.approx(
        sum(s.total for s in layer.sublayers))
    assert layer.transfer >= 0.0
    assert layer.prefetchable_transfer <= layer.transfer + 1e-15


@settings(max_examples=40, deadline=None)
@given(policy=policies, batch=batches, length=lengths, stage=stages)
def test_overlap_never_exceeds_serial(policy, batch, length, stage):
    spec = get_model("opt-175b")
    system = get_system("spr-a100")
    layer = layer_latency(spec, stage, policy, batch, length, system,
                          CONFIG)
    for minibatches in (1, 2, 4):
        assert (overlapped_layer_time(layer, minibatches)
                <= serial_layer_time(layer) + 1e-12)


@settings(max_examples=25, deadline=None)
@given(batch=batches, length=lengths, stage=stages)
def test_optimal_policy_dominates_named_policies(batch, length, stage):
    spec = get_model("opt-175b")
    system = get_system("spr-a100")
    best = optimal_policy(spec, stage, batch, length, system, CONFIG)
    for named in ("000000", "111111", "011000"):
        layer = layer_latency(spec, stage,
                              OffloadPolicy.from_string(named), batch,
                              length, system, CONFIG)
        assert best.layer_time <= serial_layer_time(layer) + 1e-12


@settings(max_examples=30, deadline=None)
@given(batch=batches, length=lengths, stage=stages,
       sub=st.sampled_from(list(Sublayer)))
def test_costs_scale_monotonically(batch, length, stage, sub):
    spec = get_model("opt-175b")
    cost = sublayer_cost(spec, sub, stage, batch, length)
    bigger = sublayer_cost(spec, sub, stage, batch + 1, length)
    assert bigger.flops >= cost.flops
    assert bigger.d_x >= cost.d_x


@settings(max_examples=30, deadline=None)
@given(policy=policies, batch=st.integers(1, 512),
       length=st.integers(1, 512))
def test_resident_weights_never_slower(policy, batch, length):
    spec = get_model("opt-30b")
    system = get_system("spr-a100")
    streamed = layer_latency(spec, Stage.DECODE, policy, batch, length,
                             system, CONFIG)
    resident = layer_latency(spec, Stage.DECODE, policy, batch, length,
                             system, CONFIG, weights_resident=True)
    assert resident.total <= streamed.total + 1e-12


# ----------------------------------------------------------------------
# Roofline invariants
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(flops=st.floats(1e3, 1e15), bytes_moved=st.floats(1.0, 1e12))
def test_matmul_time_positive_and_monotone(flops, bytes_moved):
    engine = ComputeEngine(
        "t", peak_flops=1e13, mem_bandwidth=1e11,
        efficiency=EfficiencyCurve(0.5, 1e10))
    time = engine.matmul_time(flops, bytes_moved)
    assert time > 0.0
    assert engine.matmul_time(flops * 2, bytes_moved) >= time
    assert engine.matmul_time(flops, bytes_moved * 2) >= time


# ----------------------------------------------------------------------
# Kernel numerics
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(rows=st.integers(1, 40), depth=st.integers(1, 70),
       cols=st.integers(1, 40), seed=st.integers(0, 1000))
def test_amx_tiling_matches_reference(rows, depth, cols, seed):
    rng = np.random.default_rng(seed)
    a = rng.normal(0, 1, (rows, depth)).astype(np.float32)
    b = rng.normal(0, 1, (depth, cols)).astype(np.float32)
    np.testing.assert_allclose(amx_gemm(a, b),
                               bf16_matmul_reference(a, b),
                               rtol=1e-4, atol=1e-4)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(-1e30, 1e30, allow_nan=False),
                min_size=1, max_size=64))
def test_bf16_round_idempotent_and_bounded(values):
    array = np.array(values, dtype=np.float32)
    rounded = bf16_round(array)
    np.testing.assert_array_equal(bf16_round(rounded), rounded)
    # Subnormals lose mantissa bits wholesale; check normal values.
    normal = np.isfinite(array) & (np.abs(array) > 1e-30)
    if normal.any():
        rel = np.abs(rounded[normal] - array[normal]) / np.abs(
            array[normal])
        assert np.nanmax(rel) <= 2.0**-8


# ----------------------------------------------------------------------
# DES invariants
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(n_layers=st.integers(1, 12), minibatches=st.integers(1, 4),
       batch=st.integers(1, 900))
def test_des_bounded_by_serial_and_critical_path(n_layers, minibatches,
                                                 batch):
    spec = get_model("opt-175b")
    system = get_system("spr-a100")
    layer = layer_latency(spec, Stage.DECODE,
                          OffloadPolicy.from_string("011000"), batch,
                          256, system, CONFIG)
    graph = build_stage_graph(layer, n_layers, minibatches=minibatches)
    timeline = simulate(graph)
    assert timeline.makespan >= graph.critical_path_length() - 1e-12
    serial = serial_layer_time(layer) * n_layers
    assert timeline.makespan <= serial + layer.prefetchable_transfer


# ----------------------------------------------------------------------
# Functional-engine invariance (the paper's correctness premise)
# ----------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(bits=st.tuples(*([st.integers(0, 1)] * 6)),
       seed=st.integers(0, 50))
def test_generation_policy_invariant(bits, seed):
    from repro.inference.engine import CooperativeEngine
    from repro.inference.transformer import TinyTransformer

    spec = get_model("opt-tiny")
    model = TinyTransformer(spec, seed=0)
    rng = np.random.default_rng(seed)
    prompt = rng.integers(0, spec.vocab_size, (1, 4))
    policy = OffloadPolicy(bits)
    reference = CooperativeEngine(
        model, OffloadPolicy.from_string("111111"),
        OffloadPolicy.from_string("111111")).generate(prompt, 2)
    other = CooperativeEngine(model, policy, policy).generate(prompt, 2)
    np.testing.assert_array_equal(reference.tokens, other.tokens)
