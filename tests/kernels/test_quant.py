"""BF16 rounding semantics."""

import numpy as np
import pytest

from repro.kernels.quant import bf16_matmul_reference, bf16_round


def test_bf16_representable_values_unchanged():
    # Values with <= 8 mantissa bits are exactly representable.
    values = np.array([0.0, 1.0, -2.5, 0.15625, 1024.0], dtype=np.float32)
    assert np.array_equal(bf16_round(values), values)


def test_rounding_drops_low_mantissa_bits():
    # 1 + 2^-20 is not representable in BF16; rounds back to 1.
    value = np.array([1.0 + 2.0**-20], dtype=np.float32)
    assert bf16_round(value)[0] == 1.0


def test_round_to_nearest_even():
    # Exactly halfway between two BF16 values: ties to even mantissa.
    # 1.0 + 2^-8 is the next BF16 after 1.0; halfway is 1 + 2^-9.
    halfway = np.array([1.0 + 2.0**-9], dtype=np.float32)
    rounded = bf16_round(halfway)[0]
    assert rounded == 1.0  # even mantissa wins


def test_rounding_error_bounded():
    rng = np.random.default_rng(0)
    values = rng.normal(0, 10, 1000).astype(np.float32)
    rounded = bf16_round(values)
    rel = np.abs(rounded - values) / np.abs(values)
    # BF16 has 8 mantissa bits: relative error <= 2^-8.
    assert rel.max() <= 2.0**-8


def test_idempotent():
    rng = np.random.default_rng(1)
    values = rng.normal(0, 1, 100).astype(np.float32)
    once = bf16_round(values)
    assert np.array_equal(bf16_round(once), once)


def test_nan_preserved():
    values = np.array([np.nan, 1.0], dtype=np.float32)
    rounded = bf16_round(values)
    assert np.isnan(rounded[0])
    assert rounded[1] == 1.0


def test_shape_preserved():
    values = np.zeros((3, 4, 5), dtype=np.float32)
    assert bf16_round(values).shape == (3, 4, 5)


def test_matmul_reference_rounds_inputs():
    a = np.array([[1.0 + 2.0**-20]], dtype=np.float32)
    b = np.array([[1.0]], dtype=np.float32)
    # The tiny perturbation disappears in BF16.
    assert bf16_matmul_reference(a, b)[0, 0] == 1.0


def test_matmul_reference_accumulates_fp32():
    # Summing 256 copies of 1.0 stays exact in FP32 accumulation.
    a = np.ones((1, 256), dtype=np.float32)
    b = np.ones((256, 1), dtype=np.float32)
    assert bf16_matmul_reference(a, b)[0, 0] == 256.0
