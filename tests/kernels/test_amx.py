"""AMX tile-pipeline emulation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernels.amx import (
    AMX_TILE_K,
    AMX_TILE_M,
    AMX_TILE_N,
    amx_gemm,
    amx_tile_count,
)
from repro.kernels.quant import bf16_matmul_reference


def test_tile_geometry():
    # TDPBF16PS: 16x16 FP32 C tile, K depth 32 BF16 pairs.
    assert (AMX_TILE_M, AMX_TILE_N, AMX_TILE_K) == (16, 16, 32)


def test_tile_count_exact_multiples():
    assert amx_tile_count(16, 16, 32) == 1
    assert amx_tile_count(32, 32, 64) == 8


def test_tile_count_rounds_up():
    assert amx_tile_count(17, 16, 32) == 2
    assert amx_tile_count(1, 1, 1) == 1


def test_tile_count_flop_accounting():
    # Each tile op performs 2*16*16*32 = 16384 FLOP; tiled FLOPs must
    # cover the nominal GEMM FLOPs.
    rows, cols, depth = 100, 200, 300
    nominal = 2 * rows * cols * depth
    tiled = amx_tile_count(rows, cols, depth) * 2 * 16 * 16 * 32
    assert tiled >= nominal
    assert tiled < nominal * 1.4


def test_tile_count_validation():
    with pytest.raises(ConfigurationError):
        amx_tile_count(0, 16, 32)


def test_amx_matches_reference_exact_tiles():
    rng = np.random.default_rng(0)
    a = rng.normal(0, 1, (32, 64)).astype(np.float32)
    b = rng.normal(0, 1, (64, 48)).astype(np.float32)
    np.testing.assert_allclose(amx_gemm(a, b),
                               bf16_matmul_reference(a, b),
                               rtol=1e-5, atol=1e-5)


def test_amx_matches_reference_ragged_shapes():
    rng = np.random.default_rng(1)
    a = rng.normal(0, 1, (7, 33)).astype(np.float32)
    b = rng.normal(0, 1, (33, 19)).astype(np.float32)
    np.testing.assert_allclose(amx_gemm(a, b),
                               bf16_matmul_reference(a, b),
                               rtol=1e-5, atol=1e-5)


def test_amx_identity():
    identity = np.eye(48, dtype=np.float32)
    rng = np.random.default_rng(2)
    b = rng.normal(0, 1, (48, 32)).astype(np.float32)
    np.testing.assert_allclose(amx_gemm(identity, b),
                               bf16_matmul_reference(identity, b),
                               atol=1e-6)


def test_amx_shape_validation():
    with pytest.raises(ConfigurationError):
        amx_gemm(np.zeros((4, 5)), np.zeros((6, 7)))
    with pytest.raises(ConfigurationError):
        amx_gemm(np.zeros(4), np.zeros((4, 4)))


def test_amx_output_dtype_and_shape():
    out = amx_gemm(np.zeros((5, 40), dtype=np.float32),
                   np.zeros((40, 9), dtype=np.float32))
    assert out.shape == (5, 9)
    assert out.dtype == np.float32
