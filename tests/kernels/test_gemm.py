"""Reference GEMM/GEMV kernels."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernels.gemm import batched_gemv, gemm, gemv


def test_gemm_matches_numpy_fp32():
    rng = np.random.default_rng(0)
    a = rng.normal(0, 1, (8, 16)).astype(np.float32)
    b = rng.normal(0, 1, (16, 4)).astype(np.float32)
    exact = gemm(a, b, bf16=False)
    np.testing.assert_allclose(exact, a @ b, rtol=1e-6)


def test_gemm_bf16_close_to_fp32():
    rng = np.random.default_rng(1)
    a = rng.normal(0, 1, (32, 64)).astype(np.float32)
    b = rng.normal(0, 1, (64, 32)).astype(np.float32)
    np.testing.assert_allclose(gemm(a, b), a @ b, rtol=0.05, atol=0.05)


def test_gemm_shape_mismatch():
    with pytest.raises(ConfigurationError, match="mismatch"):
        gemm(np.zeros((2, 3)), np.zeros((4, 5)))


def test_gemm_requires_2d():
    with pytest.raises(ConfigurationError):
        gemm(np.zeros(3), np.zeros((3, 3)))


def test_gemv():
    matrix = np.eye(4, dtype=np.float32) * 2.0
    vector = np.arange(4, dtype=np.float32)
    np.testing.assert_allclose(gemv(matrix, vector), 2.0 * vector)


def test_gemv_shape_validation():
    with pytest.raises(ConfigurationError):
        gemv(np.zeros((2, 2)), np.zeros((2, 2)))


def test_batched_gemv_matches_loop():
    rng = np.random.default_rng(2)
    mats = rng.normal(0, 1, (6, 8, 5)).astype(np.float32)
    vecs = rng.normal(0, 1, (6, 8)).astype(np.float32)
    batched = batched_gemv(mats, vecs, bf16=False)
    for i in range(6):
        np.testing.assert_allclose(batched[i], vecs[i] @ mats[i],
                                   rtol=1e-5)


def test_batched_gemv_validation():
    with pytest.raises(ConfigurationError):
        batched_gemv(np.zeros((2, 3, 4)), np.zeros((3, 3)))
    with pytest.raises(ConfigurationError):
        batched_gemv(np.zeros((2, 3, 4)), np.zeros((2, 4)))
    with pytest.raises(ConfigurationError):
        batched_gemv(np.zeros((2, 3)), np.zeros((2, 3)))
