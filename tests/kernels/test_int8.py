"""INT8 quantization kernels."""

import numpy as np
import pytest

from repro.kernels.quant import (
    bf16_matmul_reference,
    int8_dequantize,
    int8_quantize,
    w8a16_matmul_reference,
)


def test_roundtrip_error_bounded():
    rng = np.random.default_rng(0)
    weights = rng.normal(0, 0.5, (64, 32)).astype(np.float32)
    q, scales = int8_quantize(weights)
    restored = int8_dequantize(q, scales)
    # Symmetric 8-bit: error <= scale/2 = max|row| / 254 per element.
    bound = np.abs(weights).max(axis=1, keepdims=True) / 254.0
    assert (np.abs(restored - weights) <= bound + 1e-7).all()


def test_quantized_dtype_and_range():
    rng = np.random.default_rng(1)
    q, scales = int8_quantize(rng.normal(0, 3, (8, 8)))
    assert q.dtype == np.int8
    assert q.min() >= -127 and q.max() <= 127
    assert scales.shape == (8, 1)
    assert (scales > 0).all()


def test_zero_rows_handled():
    weights = np.zeros((4, 4), dtype=np.float32)
    q, scales = int8_quantize(weights)
    assert (q == 0).all()
    np.testing.assert_array_equal(int8_dequantize(q, scales), weights)


def test_extreme_values_exactly_representable():
    weights = np.array([[127.0, -127.0, 0.0, 63.5]], dtype=np.float32)
    q, scales = int8_quantize(weights)
    np.testing.assert_allclose(int8_dequantize(q, scales), weights,
                               atol=0.5)


def test_w8a16_matmul_close_to_bf16():
    rng = np.random.default_rng(2)
    a = rng.normal(0, 1, (16, 64)).astype(np.float32)
    w = rng.normal(0, 0.1, (64, 32)).astype(np.float32)
    q, scales = int8_quantize(w.T)  # per-output-row scales
    approx = w8a16_matmul_reference(a, q.T.astype(np.int8),
                                    scales.T)
    exact = bf16_matmul_reference(a, w)
    # 8-bit weights: a few percent relative error on dot products.
    scale = np.abs(exact).mean()
    assert np.abs(approx - exact).mean() <= 0.05 * scale + 1e-3
