"""The LiaRuntime facade."""

import numpy as np
import pytest

from repro.core.config import LiaConfig
from repro.core.runtime import LiaRuntime
from repro.errors import ConfigurationError
from repro.models.sublayers import Stage
from repro.models.workload import InferenceRequest
from repro.models.zoo import get_model


@pytest.fixture
def runtime(tiny_spec, spr_a100):
    return LiaRuntime(tiny_spec, spr_a100)


def test_plan_contains_everything(opt_30b, spr_a100, eval_config):
    runtime = LiaRuntime(opt_30b, spr_a100, eval_config)
    plan = runtime.plan(InferenceRequest(1, 256, 32))
    assert plan.estimate.latency > 0.0
    assert plan.prefill_policy == plan.estimate.prefill_policy
    assert plan.residency.n_layers == opt_30b.n_layers


def test_generate_runs_real_tokens(runtime):
    prompt = np.arange(8, dtype=np.int64).reshape(1, 8) % 100
    result = runtime.generate(prompt, max_new_tokens=4)
    assert result.tokens.shape == (1, 4)
    assert (result.tokens < runtime.spec.vocab_size).all()


def test_generate_deterministic(tiny_spec, spr_a100):
    prompt = np.arange(6, dtype=np.int64).reshape(1, 6)
    a = LiaRuntime(tiny_spec, spr_a100, seed=5).generate(prompt, 3)
    b = LiaRuntime(tiny_spec, spr_a100, seed=5).generate(prompt, 3)
    np.testing.assert_array_equal(a.tokens, b.tokens)


def test_functional_engine_rejects_huge_models(opt_30b, spr_a100,
                                               eval_config):
    runtime = LiaRuntime(opt_30b, spr_a100, eval_config)
    with pytest.raises(ConfigurationError, match="too large"):
        runtime.functional_model()


def test_timeline_simulation(opt_175b, spr_a100, eval_config):
    runtime = LiaRuntime(opt_175b, spr_a100, eval_config)
    request = InferenceRequest(64, 256, 32)
    timeline = runtime.simulate_timeline(request, Stage.DECODE,
                                         n_layers=8)
    assert timeline.makespan > 0.0
    assert "pcie" in timeline.by_resource()
    gantt = timeline.render_gantt()
    assert "makespan" in gantt


def test_timeline_overlap_beats_serial(opt_175b, spr_a100, eval_config):
    request = InferenceRequest(900, 256, 32)
    overlapped = LiaRuntime(opt_175b, spr_a100,
                            eval_config).simulate_timeline(
        request, Stage.DECODE, n_layers=12)
    serial = LiaRuntime(opt_175b, spr_a100,
                        eval_config.without_overlap()).simulate_timeline(
        request, Stage.DECODE, n_layers=12)
    # The serial graph chains everything; overlap pipelines PCIe.
    assert overlapped.makespan <= serial.makespan * 1.01


def test_simulate_request_matches_estimator(opt_30b, spr_a100,
                                            eval_config):
    """The full-request DES replay converges to the closed-form
    estimate (scaled to the capped depth/steps)."""
    runtime = LiaRuntime(opt_30b, spr_a100, eval_config)
    request = InferenceRequest(64, 256, 32)
    depth, steps = 12, 4
    timeline = runtime.simulate_request(request, n_layers=depth,
                                        decode_steps=steps)
    estimate = runtime.plan(request).estimate
    scaled = ((estimate.prefill.time
               + estimate.decode.time * steps / request.output_len)
              * depth / opt_30b.n_layers)
    assert timeline.makespan == pytest.approx(scaled, rel=0.12)


def test_simulate_request_resources(opt_30b, spr_a100, eval_config):
    runtime = LiaRuntime(opt_30b, spr_a100, eval_config)
    timeline = runtime.simulate_request(InferenceRequest(1, 64, 8),
                                        n_layers=4, decode_steps=2)
    assert set(timeline.by_resource()) <= {"compute", "pcie"}
    assert timeline.makespan > 0.0
