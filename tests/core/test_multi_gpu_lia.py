"""Multi-GPU LIA extension (§8)."""

import pytest

from repro.core.config import LiaConfig
from repro.core.multi_gpu import MultiGpuLiaEstimator, expand_gpu_side
from repro.core.optimizer import decode_policy_threshold
from repro.errors import ConfigurationError
from repro.hardware.interconnect import get_link
from repro.models.workload import InferenceRequest


@pytest.fixture
def nvlink():
    return get_link("nvlink3")


def test_single_gpu_is_identity(opt_175b, gnr_a100, eval_config):
    estimator = MultiGpuLiaEstimator(opt_175b, gnr_a100, 1, eval_config)
    assert estimator.system is gnr_a100
    request = InferenceRequest(64, 256, 32)
    from repro.core.estimator import LiaEstimator
    single = LiaEstimator(opt_175b, gnr_a100, eval_config).estimate(
        request)
    multi = estimator.estimate(request)
    assert multi.latency == pytest.approx(single.latency)


def test_expand_scales_gpu_side(gnr_a100, nvlink):
    expanded = expand_gpu_side(gnr_a100, 4, peer_link=nvlink)
    assert expanded.gpu.memory_capacity == 4 * gnr_a100.gpu.memory_capacity
    assert expanded.gpu.engine.peak_flops == \
        4 * gnr_a100.gpu.engine.peak_flops
    assert expanded.host_link.bandwidth == pytest.approx(
        4 * gnr_a100.host_link.bandwidth)
    assert expanded.peer_link is nvlink
    with pytest.raises(ConfigurationError):
        expand_gpu_side(gnr_a100, 0)


def test_throughput_scales_with_gpus(opt_175b, gnr_a100, eval_config,
                                     nvlink):
    request = InferenceRequest(900, 256, 32)
    tputs = []
    for n in (1, 2, 4):
        estimator = MultiGpuLiaEstimator(opt_175b, gnr_a100, n,
                                         eval_config, peer_link=nvlink)
        tputs.append(estimator.estimate(request).throughput)
    assert tputs[0] < tputs[1] < tputs[2]
    # Sub-linear scaling: communication and the CPU-side stages don't
    # scale with GPU count (§8's caveat).
    assert tputs[2] < 4.5 * tputs[0]


def test_decode_threshold_drops_with_gpu_count(opt_175b, gnr_a100,
                                               eval_config, nvlink):
    """§8: GPUs handle computation more frequently in multi-GPU LIA."""
    single = decode_policy_threshold(opt_175b, gnr_a100, eval_config)
    quad = decode_policy_threshold(
        opt_175b,
        expand_gpu_side(gnr_a100, 4, peer_link=nvlink),
        eval_config)
    assert quad < single


def test_pcie_peer_scales_worse_than_nvlink(opt_175b, gnr_a100,
                                            eval_config, nvlink):
    """§8: PCIe-connected GPUs lose more to communication."""
    request = InferenceRequest(900, 256, 32)
    fast = MultiGpuLiaEstimator(opt_175b, gnr_a100, 4, eval_config,
                                peer_link=nvlink).estimate(request)
    slow = MultiGpuLiaEstimator(opt_175b, gnr_a100, 4, eval_config,
                                peer_link=get_link("pcie4")).estimate(
        request)
    assert slow.throughput < fast.throughput


def test_full_cpu_stages_pay_no_allreduce(opt_175b, gnr_a100,
                                          eval_config, nvlink):
    # B=1: both stages run full-CPU, so TP adds nothing.
    request = InferenceRequest(1, 32, 32)
    single = MultiGpuLiaEstimator(opt_175b, gnr_a100, 1,
                                  eval_config).estimate(request)
    multi = MultiGpuLiaEstimator(opt_175b, gnr_a100, 4, eval_config,
                                 peer_link=nvlink).estimate(request)
    if multi.prefill_policy.all_cpu and multi.decode_policy.all_cpu:
        assert multi.latency <= single.latency + 1e-9
