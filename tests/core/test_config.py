"""LiaConfig variants and validation."""

import pytest

from repro.core.config import KvCachePlacement, LiaConfig, WeightPlacement
from repro.core.policy import PARTIAL_CPU
from repro.errors import ConfigurationError


def test_defaults_are_full_framework():
    config = LiaConfig()
    assert config.gpu_residency
    assert config.overlap
    assert config.prefill_minibatches == 2
    assert config.cpu_engine == "amx"
    assert config.weight_placement is WeightPlacement.DDR
    assert config.kv_placement is KvCachePlacement.DDR
    assert config.forced_prefill_policy is None
    assert config.enforce_host_capacity


def test_ablation_variants_flip_one_knob():
    base = LiaConfig()
    no1 = base.without_gpu_residency()
    assert not no1.gpu_residency and no1.overlap
    no2 = base.without_overlap()
    assert no2.gpu_residency and not no2.overlap
    forced = base.with_forced_policy(PARTIAL_CPU, PARTIAL_CPU)
    assert forced.forced_prefill_policy == PARTIAL_CPU
    assert forced.forced_decode_policy == PARTIAL_CPU
    # The original is untouched (frozen dataclass + replace).
    assert base.gpu_residency and base.overlap


def test_cxl_variants():
    tiered = LiaConfig().with_cxl_weights()
    assert tiered.weight_placement is WeightPlacement.CXL
    assert tiered.kv_placement is KvCachePlacement.DDR
    oblivious = LiaConfig().with_all_cxl()
    assert oblivious.weight_placement is WeightPlacement.CXL
    assert oblivious.kv_placement is KvCachePlacement.CXL


def test_validation():
    with pytest.raises(ConfigurationError):
        LiaConfig(prefill_minibatches=0)
    with pytest.raises(ConfigurationError):
        LiaConfig(gpu_working_reserve=1.0)
    with pytest.raises(ConfigurationError):
        LiaConfig(gpu_working_reserve=-0.1)
