"""Fast (closed-form) decode summation vs the exact per-step loop.

The fast path exploits the near-affine structure of per-step decode
latency in the context length; the adaptive summation must agree with
the exact loop to well under the repo's 1e-9 acceptance gate on every
model/system/shape combination, and degenerate spans must be exact.
"""

import pytest

from repro.core.cache import clear_caches
from repro.core.config import LiaConfig
from repro.core.estimator import (
    LiaEstimator,
    StageBreakdown,
    sum_breakdowns_closed_form,
)
from repro.errors import ConfigurationError
from repro.hardware.system import get_system
from repro.models.workload import InferenceRequest
from repro.models.zoo import get_model

REL_GATE = 1e-9


def _assert_close(exact: StageBreakdown, fast: StageBreakdown) -> None:
    for mine, theirs in zip(exact.components(), fast.components()):
        scale = max(abs(mine), abs(theirs), 1e-30)
        assert abs(mine - theirs) / scale < REL_GATE


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestClosedFormSummation:
    def test_affine_function_is_exact(self):
        """For affine f the trapezoid identity is an equality."""
        def step(length):
            value = 3.0 * length + 7.0
            return StageBreakdown(time=value, cpu_compute=2.0 * length,
                                  gpu_compute=0.5 * length + 1.0,
                                  transfer=0.0)

        total = sum_breakdowns_closed_form(step, 10, 500)
        expected = sum((step(length).time for length in range(10, 501)))
        assert total.time == pytest.approx(expected, rel=1e-12)
        assert total.transfer == 0.0

    def test_short_span_falls_back_to_exact_loop(self):
        calls = []

        def step(length):
            calls.append(length)
            return StageBreakdown(length, 0.0, 0.0, 0.0)

        total = sum_breakdowns_closed_form(step, 5, 9)
        assert total.time == sum(range(5, 10))
        assert sorted(set(calls)) == list(range(5, 10))

    def test_empty_span_is_zero(self):
        total = sum_breakdowns_closed_form(
            lambda length: StageBreakdown(1.0, 1.0, 1.0, 1.0), 10, 9)
        assert total == StageBreakdown(0.0, 0.0, 0.0, 0.0)

    def test_kinked_function_recurses_to_exactness(self):
        """A roofline-style max() kink must not fool the trapezoid."""
        def step(length):
            value = max(2.0 * length, 500.0 + 0.5 * length)
            return StageBreakdown(value, 0.0, 0.0, value)

        total = sum_breakdowns_closed_form(step, 1, 1000)
        expected = sum(step(length).time for length in range(1, 1001))
        assert abs(total.time - expected) / expected < REL_GATE


class TestFastVsExactEstimates:
    @pytest.mark.parametrize("model,system_name", [
        ("opt-6.7b", "spr-a100"),
        ("opt-30b", "spr-a100"),
        ("opt-66b", "spr-h100"),
        ("opt-175b", "spr-a100"),
        ("opt-175b", "spr-h100"),
    ])
    @pytest.mark.parametrize("batch,input_len,output_len", [
        (1, 32, 16),
        (1, 256, 512),
        (16, 128, 64),
        (64, 512, 32),
    ])
    def test_property_fast_matches_exact(self, model, system_name,
                                         batch, input_len, output_len):
        spec = get_model(model)
        system = get_system(system_name)
        request = InferenceRequest(batch, input_len, output_len)
        base = LiaConfig(enforce_host_capacity=False)
        exact = LiaEstimator(spec, system, base).estimate(request)
        fast = LiaEstimator(spec, system,
                            base.with_fast_decode()).estimate(request)
        _assert_close(exact.decode, fast.decode)
        assert exact.prefill == fast.prefill
        scale = max(abs(exact.latency), 1e-30)
        assert abs(exact.latency - fast.latency) / scale < REL_GATE

    def test_single_decode_step(self):
        spec = get_model("opt-30b")
        system = get_system("spr-a100")
        request = InferenceRequest(1, 64, 1)
        base = LiaConfig(enforce_host_capacity=False)
        exact = LiaEstimator(spec, system, base).estimate(request)
        fast = LiaEstimator(spec, system,
                            base.with_fast_decode()).estimate(request)
        assert exact.decode == fast.decode

    def test_cxl_configuration(self):
        """The fast path must also hold under CXL weight placement."""
        spec = get_model("opt-175b")
        system = get_system("spr-a100").with_cxl(n_expanders=2)
        base = LiaConfig(enforce_host_capacity=False).with_cxl_weights()
        request = InferenceRequest(8, 128, 128)
        exact = LiaEstimator(spec, system, base).estimate(request)
        fast = LiaEstimator(spec, system,
                            base.with_fast_decode()).estimate(request)
        _assert_close(exact.decode, fast.decode)


class TestConfigValidation:
    def test_decode_eval_validated(self):
        with pytest.raises(ConfigurationError):
            LiaConfig(decode_eval="turbo")

    def test_with_fast_decode(self):
        config = LiaConfig()
        assert config.decode_eval == "exact"
        assert config.with_fast_decode().decode_eval == "fast"

    def test_without_cache(self):
        config = LiaConfig()
        assert config.cache_enabled
        assert not config.without_cache().cache_enabled
