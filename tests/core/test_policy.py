"""Offload-policy vectors."""

import pytest

from repro.core.policy import (
    FLEXGEN_POLICY,
    FULL_CPU,
    FULL_GPU,
    PARTIAL_CPU,
    PARTIAL_CPU_MOE,
    Device,
    OffloadPolicy,
)
from repro.errors import PolicyError
from repro.models.sublayers import Sublayer


def test_named_policies_match_section71():
    assert str(PARTIAL_CPU) == "(0, 1, 1, 0, 0, 0)"
    assert str(FULL_CPU) == "(1, 1, 1, 1, 1, 1)"
    assert str(FULL_GPU) == "(0, 0, 0, 0, 0, 0)"
    assert str(PARTIAL_CPU_MOE) == "(0, 1, 1, 0, 1, 1)"
    assert FLEXGEN_POLICY == PARTIAL_CPU


def test_convention_p_equals_1_is_cpu():
    assert PARTIAL_CPU.device(Sublayer.ATTENTION_SCORE) is Device.CPU
    assert PARTIAL_CPU.device(Sublayer.FC1) is Device.GPU
    assert PARTIAL_CPU.on_cpu(Sublayer.ATTENTION_CONTEXT)
    assert PARTIAL_CPU.on_gpu(Sublayer.QKV_MAPPING)


def test_p0_equals_p6():
    policy = OffloadPolicy.from_string("000001")
    assert policy.p(0) == 1
    assert policy.p(0) == policy.p(6)


def test_boundary_crossings():
    policy = OffloadPolicy.from_string("011000")
    # p0 = p6 = 0; crossings at sublayers 2 (0->1) and 4 (1->0).
    assert not policy.crosses_boundary(1)
    assert policy.crosses_boundary(2)
    assert not policy.crosses_boundary(3)
    assert policy.crosses_boundary(4)
    assert not policy.crosses_boundary(5)
    assert not policy.crosses_boundary(6)


def test_full_policies_never_cross():
    for policy in (FULL_CPU, FULL_GPU):
        assert not any(policy.crosses_boundary(i) for i in range(1, 7))


def test_all_policies_enumerates_64_unique():
    policies = list(OffloadPolicy.all_policies())
    assert len(policies) == 64
    assert len(set(policies)) == 64
    assert FULL_GPU == policies[0]
    assert FULL_CPU == policies[-1]


def test_from_string_variants():
    assert OffloadPolicy.from_string("0,1,1,0,0,0") == PARTIAL_CPU
    assert OffloadPolicy.from_string("0 1 1 0 0 0") == PARTIAL_CPU


def test_cpu_gpu_sublayer_partition():
    assert PARTIAL_CPU.cpu_sublayers == (Sublayer.ATTENTION_SCORE,
                                         Sublayer.ATTENTION_CONTEXT)
    assert len(PARTIAL_CPU.gpu_sublayers) == 4
    assert FULL_CPU.all_cpu and not FULL_CPU.all_gpu
    assert FULL_GPU.all_gpu and not FULL_GPU.all_cpu


def test_malformed_policies_rejected():
    with pytest.raises(PolicyError):
        OffloadPolicy.from_string("0110")
    with pytest.raises(PolicyError):
        OffloadPolicy.from_string("01100x")
    with pytest.raises(PolicyError):
        OffloadPolicy((0, 1, 2, 0, 0, 0))
    with pytest.raises(PolicyError):
        FULL_CPU.p(7)
