"""Optimization-2 overlap model, validated against the DES."""

import pytest

from repro.core.config import LiaConfig
from repro.core.latency import layer_latency
from repro.core.overlap import (
    build_stage_graph,
    overlapped_layer_time,
    serial_layer_time,
)
from repro.core.policy import FULL_GPU, PARTIAL_CPU
from repro.errors import ConfigurationError
from repro.models.sublayers import Stage
from repro.sim.engine import simulate


def _decode_layer(opt_175b, spr_a100, policy=PARTIAL_CPU, batch=900):
    return layer_latency(opt_175b, Stage.DECODE, policy, batch, 256,
                         spr_a100, LiaConfig(enforce_host_capacity=False))


def test_overlap_never_slower_than_serial(opt_175b, spr_a100):
    layer = _decode_layer(opt_175b, spr_a100)
    assert overlapped_layer_time(layer) <= serial_layer_time(layer)


def test_overlap_hides_weight_prefetch(opt_175b, spr_a100):
    layer = _decode_layer(opt_175b, spr_a100)
    overlapped = overlapped_layer_time(layer)
    # Steady state is the max of the compute chain and the PCIe chain.
    expected = max(layer.compute + layer.dependent_transfer,
                   layer.dependent_transfer
                   + layer.prefetchable_transfer)
    assert overlapped == pytest.approx(expected)


def test_compute_scale_inflates(opt_175b, spr_a100):
    layer = _decode_layer(opt_175b, spr_a100)
    plain = overlapped_layer_time(layer)
    inflated = overlapped_layer_time(layer, compute_scale=1.5)
    assert inflated >= plain


def test_minibatch_validation(opt_175b, spr_a100):
    layer = _decode_layer(opt_175b, spr_a100)
    with pytest.raises(ConfigurationError):
        overlapped_layer_time(layer, minibatches=0)


def test_des_matches_closed_form_whole_batch(opt_175b, spr_a100):
    """The DES replay of LIA's decode schedule converges to the
    closed-form steady-state layer period."""
    layer = _decode_layer(opt_175b, spr_a100, FULL_GPU, batch=64)
    n_layers = 24
    graph = build_stage_graph(layer, n_layers, minibatches=1)
    makespan = simulate(graph).makespan
    period = overlapped_layer_time(layer, minibatches=1)
    # Makespan = pipeline fill + steady-state periods; compare the
    # amortized per-layer rate with 15 % slack for the fill.
    assert makespan / n_layers == pytest.approx(period, rel=0.15)
    assert makespan <= serial_layer_time(layer) * n_layers


def test_des_matches_closed_form_minibatched(opt_175b, spr_a100):
    layer = layer_latency(opt_175b, Stage.PREFILL, FULL_GPU, 64, 512,
                          spr_a100,
                          LiaConfig(enforce_host_capacity=False))
    n_layers = 24
    graph = build_stage_graph(layer, n_layers, minibatches=2)
    makespan = simulate(graph).makespan
    period = overlapped_layer_time(layer, minibatches=2)
    assert makespan / n_layers == pytest.approx(period, rel=0.2)


def test_graph_resources(opt_175b, spr_a100):
    layer = _decode_layer(opt_175b, spr_a100)
    graph = build_stage_graph(layer, 4, minibatches=2)
    assert graph.resources() == ["compute", "pcie"]
    with pytest.raises(ConfigurationError):
        build_stage_graph(layer, 0)


def test_full_cpu_layer_has_nothing_to_overlap(opt_175b, spr_a100):
    from repro.core.policy import FULL_CPU
    layer = layer_latency(opt_175b, Stage.DECODE, FULL_CPU, 1, 256,
                          spr_a100, LiaConfig())
    assert overlapped_layer_time(layer) == pytest.approx(
        serial_layer_time(layer))
