"""Optimization-2 overlap model, validated against the DES."""

import pytest

from repro.core.config import LiaConfig
from repro.core.latency import layer_latency
from repro.core.overlap import (
    build_stage_graph,
    overlapped_layer_time,
    serial_layer_time,
)
from repro.core.policy import FULL_GPU, PARTIAL_CPU
from repro.errors import ConfigurationError
from repro.models.sublayers import Stage
from repro.sim.engine import simulate


def _decode_layer(opt_175b, spr_a100, policy=PARTIAL_CPU, batch=900):
    return layer_latency(opt_175b, Stage.DECODE, policy, batch, 256,
                         spr_a100, LiaConfig(enforce_host_capacity=False))


def test_overlap_never_slower_than_serial(opt_175b, spr_a100):
    layer = _decode_layer(opt_175b, spr_a100)
    assert overlapped_layer_time(layer) <= serial_layer_time(layer)


def test_overlap_hides_weight_prefetch(opt_175b, spr_a100):
    layer = _decode_layer(opt_175b, spr_a100)
    overlapped = overlapped_layer_time(layer)
    # Steady state is the max of the compute chain and the PCIe chain.
    expected = max(layer.compute + layer.dependent_transfer,
                   layer.dependent_transfer
                   + layer.prefetchable_transfer)
    assert overlapped == pytest.approx(expected)


def test_compute_scale_inflates(opt_175b, spr_a100):
    layer = _decode_layer(opt_175b, spr_a100)
    plain = overlapped_layer_time(layer)
    inflated = overlapped_layer_time(layer, compute_scale=1.5)
    assert inflated >= plain


def test_minibatch_validation(opt_175b, spr_a100):
    layer = _decode_layer(opt_175b, spr_a100)
    with pytest.raises(ConfigurationError):
        overlapped_layer_time(layer, minibatches=0)


def test_des_matches_closed_form_whole_batch(opt_175b, spr_a100):
    """The DES replay of LIA's decode schedule converges to the
    closed-form steady-state layer period."""
    layer = _decode_layer(opt_175b, spr_a100, FULL_GPU, batch=64)
    n_layers = 24
    graph = build_stage_graph(layer, n_layers, minibatches=1)
    makespan = simulate(graph).makespan
    period = overlapped_layer_time(layer, minibatches=1)
    # Makespan = pipeline fill + steady-state periods; compare the
    # amortized per-layer rate with 15 % slack for the fill.
    assert makespan / n_layers == pytest.approx(period, rel=0.15)
    assert makespan <= serial_layer_time(layer) * n_layers


def test_des_matches_closed_form_minibatched(opt_175b, spr_a100):
    layer = layer_latency(opt_175b, Stage.PREFILL, FULL_GPU, 64, 512,
                          spr_a100,
                          LiaConfig(enforce_host_capacity=False))
    n_layers = 24
    graph = build_stage_graph(layer, n_layers, minibatches=2)
    makespan = simulate(graph).makespan
    period = overlapped_layer_time(layer, minibatches=2)
    assert makespan / n_layers == pytest.approx(period, rel=0.2)


def test_graph_resources(opt_175b, spr_a100):
    layer = _decode_layer(opt_175b, spr_a100)
    graph = build_stage_graph(layer, 4, minibatches=2)
    assert graph.resources() == ["compute", "pcie"]
    with pytest.raises(ConfigurationError):
        build_stage_graph(layer, 0)


def test_full_cpu_layer_has_nothing_to_overlap(opt_175b, spr_a100):
    from repro.core.policy import FULL_CPU
    layer = layer_latency(opt_175b, Stage.DECODE, FULL_CPU, 1, 256,
                          spr_a100, LiaConfig())
    assert overlapped_layer_time(layer) == pytest.approx(
        serial_layer_time(layer))


def _stage_layers(opt_175b, spr_a100, stage, policy, batch, length):
    return layer_latency(opt_175b, stage, policy, batch, length,
                         spr_a100, LiaConfig(enforce_host_capacity=False))


def test_decode_chains_to_final_prefill_chunk(opt_175b, spr_a100):
    # Regression: the old m % len(chain_from) indexing chained the
    # single decode chunk to prefill chunk 0, letting decoding start
    # before the prefill pipeline drained.
    from repro.core.overlap import build_request_graph

    prefill = [_stage_layers(opt_175b, spr_a100, Stage.PREFILL,
                             FULL_GPU, 64, 512) for __ in range(3)]
    decode = [[_stage_layers(opt_175b, spr_a100, Stage.DECODE,
                             FULL_GPU, 64, 512)]]
    graph = build_request_graph(prefill, decode, prefill_minibatches=2)
    timeline = simulate(graph)
    last_prefill_chunk = timeline.record("p2.c1")
    first_decode_xfer = timeline.record("g0.0.d0")
    assert first_decode_xfer.start >= last_prefill_chunk.finish


def test_equal_width_stages_still_pipeline(opt_175b, spr_a100):
    # The ceil-index fix must not serialize equal-minibatch stages:
    # chunk m of layer i+1 still chains to chunk m of layer i (it
    # covers the same batch fraction), preserving Fig. 7 pipelining.
    from repro.core.overlap import build_request_graph

    prefill = [_stage_layers(opt_175b, spr_a100, Stage.PREFILL,
                             FULL_GPU, 64, 512) for __ in range(4)]
    graph = build_request_graph(prefill, [], prefill_minibatches=2)
    assert "p0.c0" in graph.get("p1.d0").deps
    assert "p0.c1" not in graph.get("p1.d0").deps
    assert "p0.c1" in graph.get("p1.d1").deps


def test_request_graph_des_matches_closed_form(opt_175b, spr_a100):
    # Whole-request DES vs the per-stage closed-form periods: the
    # amortized rates agree within pipeline-fill slack.
    from repro.core.overlap import build_request_graph

    n_layers, steps = 12, 4
    pl = _stage_layers(opt_175b, spr_a100, Stage.PREFILL, FULL_GPU,
                       64, 512)
    dl = _stage_layers(opt_175b, spr_a100, Stage.DECODE, FULL_GPU,
                       64, 512)
    graph = build_request_graph([pl] * n_layers,
                                [[dl] * n_layers] * steps,
                                prefill_minibatches=2)
    makespan = simulate(graph).makespan
    closed = (n_layers * overlapped_layer_time(pl, minibatches=2)
              + steps * n_layers * overlapped_layer_time(dl,
                                                         minibatches=1))
    assert makespan == pytest.approx(closed, rel=0.15)
    serial = (n_layers * serial_layer_time(pl)
              + steps * n_layers * serial_layer_time(dl))
    assert makespan <= serial * 1.001
