"""Policy optimization (§5.1 / Fig. 9)."""

import pytest

from repro.core.config import LiaConfig
from repro.core.latency import layer_latency
from repro.core.optimizer import (
    decode_policy_threshold,
    optimal_policy,
    policy_map,
    prefill_policy_transition,
)
from repro.core.overlap import serial_layer_time
from repro.core.policy import (
    FULL_CPU,
    FULL_GPU,
    PARTIAL_CPU,
    OffloadPolicy,
)
from repro.models.sublayers import Stage


def test_decode_b1_full_cpu(opt_175b, spr_a100, eval_config):
    decision = optimal_policy(opt_175b, Stage.DECODE, 1, 256, spr_a100,
                              eval_config)
    assert decision.policy == FULL_CPU


def test_decode_large_batch_partial_cpu(opt_175b, spr_a100, eval_config):
    decision = optimal_policy(opt_175b, Stage.DECODE, 1400, 256,
                              spr_a100, eval_config)
    assert decision.policy == PARTIAL_CPU


def test_prefill_small_bl_full_cpu(opt_175b, spr_a100, eval_config):
    decision = optimal_policy(opt_175b, Stage.PREFILL, 1, 32, spr_a100,
                              eval_config)
    assert decision.policy == FULL_CPU


def test_prefill_large_bl_full_gpu(opt_175b, spr_a100, eval_config):
    decision = optimal_policy(opt_175b, Stage.PREFILL, 64, 1024,
                              spr_a100, eval_config)
    assert decision.policy == FULL_GPU


def test_optimum_beats_every_policy(opt_175b, spr_a100, eval_config):
    decision = optimal_policy(opt_175b, Stage.DECODE, 64, 512, spr_a100,
                              eval_config)
    for policy in OffloadPolicy.all_policies():
        layer = layer_latency(opt_175b, Stage.DECODE, policy, 64, 512,
                              spr_a100, eval_config)
        assert decision.layer_time <= serial_layer_time(layer) + 1e-12


def test_forced_policy_respected(opt_175b, spr_a100, eval_config):
    config = eval_config.with_forced_policy(PARTIAL_CPU, PARTIAL_CPU)
    for stage in Stage:
        decision = optimal_policy(opt_175b, stage, 1, 32, spr_a100,
                                  config)
        assert decision.policy == PARTIAL_CPU


def test_resident_weights_prefer_gpu(opt_175b, spr_a100, eval_config):
    decision = optimal_policy(opt_175b, Stage.DECODE, 1, 256, spr_a100,
                              eval_config, weights_resident=True)
    # With free weights the GPU handles all parameter sublayers.
    for i in (1, 4, 5, 6):
        assert decision.policy.p(i) == 0


def test_decode_threshold_in_paper_range(opt_175b, spr_a100,
                                         eval_config):
    # §7.1 reports B = 858 on SPR-A100; the reproduction lands in the
    # same few-hundred region.
    threshold = decode_policy_threshold(opt_175b, spr_a100, eval_config)
    assert 300 <= threshold <= 1400


def test_decode_threshold_independent_of_l(opt_175b, spr_a100,
                                           eval_config):
    # §7.1: the decode policy depends on B, not L.
    thresholds = {
        decode_policy_threshold(opt_175b, spr_a100, eval_config,
                                context_len=length)
        for length in (64, 256, 1024)}
    assert len(thresholds) == 1


def test_prefill_transition_bl_in_paper_range(opt_175b, spr_a100,
                                              eval_config):
    # §7.1: BL ~ 850 on SPR-A100.
    transition = prefill_policy_transition(opt_175b, spr_a100,
                                           eval_config)
    assert 300 <= transition <= 1600


def test_h100_prefers_gpu_policies_more(opt_175b, spr_a100, spr_h100,
                                        eval_config):
    # §7.1 "Impact of GPU capability": H100 shifts the decode
    # threshold down (GPU-centric policies over a wider region).
    a100_threshold = decode_policy_threshold(opt_175b, spr_a100,
                                             eval_config)
    h100_threshold = decode_policy_threshold(opt_175b, spr_h100,
                                             eval_config)
    assert h100_threshold <= a100_threshold


def test_h100_still_uses_full_cpu_at_b1(opt_175b, spr_h100, eval_config):
    # §7.1: LIA remains effective on H100 systems — it still picks the
    # CPU-centric policy for small requests.
    decision = optimal_policy(opt_175b, Stage.DECODE, 1, 256, spr_h100,
                              eval_config)
    assert decision.policy == FULL_CPU


def test_policy_map_covers_grid(opt_175b, spr_a100, eval_config):
    grid = policy_map(opt_175b, Stage.DECODE, (1, 1400), (64, 512),
                      spr_a100, eval_config)
    assert set(grid) == {(1, 64), (1, 512), (1400, 64), (1400, 512)}
    assert grid[(1, 64)] == FULL_CPU
    assert grid[(1400, 64)] == PARTIAL_CPU


def test_moe_prefers_cpu_fc_sublayers(gnr_a100, eval_config):
    """§7.1 adaptability: as experts grow, the FC sublayers' ops/byte
    collapses and LIA moves them to the CPU alongside attention."""
    from repro.models.zoo import get_model
    dense = get_model("opt-30b")
    moe = get_model("opt-moe-16x30b")
    batch, length = 256, 256
    dense_policy = optimal_policy(dense, Stage.DECODE, batch, length,
                                  gnr_a100, eval_config).policy
    moe_policy = optimal_policy(moe, Stage.DECODE, batch, length,
                                gnr_a100, eval_config).policy
    # The MoE model offloads at least as many FC sublayers to the CPU.
    dense_fc_cpu = dense_policy.p(5) + dense_policy.p(6)
    moe_fc_cpu = moe_policy.p(5) + moe_policy.p(6)
    assert moe_fc_cpu >= dense_fc_cpu


def test_grace_hopper_all_gpu(opt_175b, eval_config):
    # §8: with a 450 GB/s-per-direction C2C link every sublayer goes
    # to the GPU.
    from repro.hardware.system import get_system
    gh200 = get_system("gh200")
    for stage in Stage:
        decision = optimal_policy(opt_175b, stage, 64, 256, gh200,
                                  eval_config)
        assert decision.policy == FULL_GPU


def test_prefill_transition_consistent_units_batch3(opt_175b, spr_a100,
                                                    eval_config):
    # Regression: with batch_size=3 the early-return paths used to mix
    # context lengths with B*L products.  Every path must now return a
    # multiple of batch_size that brackets the actual policy flip.
    product = prefill_policy_transition(opt_175b, spr_a100, eval_config,
                                        batch_size=3)
    assert product % 3 == 0
    assert product <= 65536
    length = product // 3
    decision_at = optimal_policy(opt_175b, Stage.PREFILL, 3, length,
                                 spr_a100, eval_config)
    decision_before = optimal_policy(opt_175b, Stage.PREFILL, 3,
                                     length - 1, spr_a100, eval_config)
    assert not decision_at.policy.all_cpu
    assert decision_before.policy.all_cpu


def test_prefill_transition_scales_with_batch(opt_175b, spr_a100,
                                              eval_config):
    # The flip happens near a constant B*L product (Fig. 9): the
    # products reported for B=1 and B=3 agree to a few percent.  (The
    # old unit-mixing bug made the B=3 result off by ~3x.)
    b1 = prefill_policy_transition(opt_175b, spr_a100, eval_config,
                                   batch_size=1)
    b3 = prefill_policy_transition(opt_175b, spr_a100, eval_config,
                                   batch_size=3)
    assert abs(b1 - b3) / b1 < 0.05


def test_prefill_transition_degenerate_bounds(opt_175b, spr_a100,
                                              eval_config):
    # hi < batch_size collapses both bounds to L=1; the result is the
    # smallest representable product, not a unit-mixed value.
    product = prefill_policy_transition(opt_175b, spr_a100, eval_config,
                                        batch_size=900, lo=1, hi=512)
    assert product == 900
