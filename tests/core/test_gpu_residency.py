"""Optimization-1: GPU weight residency (§5.2)."""

import pytest

from repro.core.config import LiaConfig
from repro.core.gpu_residency import (
    plan_layer_residency,
    plan_sublayer_residency,
    resident_weight_fraction,
    sublayer_class_bytes,
)
from repro.models.sublayers import Sublayer
from repro.models.workload import InferenceRequest
from repro.models.zoo import get_model


@pytest.fixture
def request_b1():
    return InferenceRequest(1, 2016, 32)


def test_paper_opt30b_example(opt_30b, spr_a100, request_b1):
    """§5.2: OPT-30B at B=1 on a 40 GB A100 — LIA stores ~62 % of
    decoder layers (~1.2 GB per layer)."""
    plan = plan_layer_residency(opt_30b, spr_a100, request_b1,
                                LiaConfig())
    per_layer_gb = opt_30b.layer_param_bytes / 1e9
    assert per_layer_gb == pytest.approx(1.23, abs=0.1)
    assert 0.5 <= plan.resident_fraction <= 0.75
    assert plan.resident_bytes <= spr_a100.gpu.memory_capacity


def test_layer_plan_finer_than_sublayer_plan(opt_30b, spr_a100,
                                             request_b1):
    """§5.2: layer granularity uses GPU capacity better than
    FlexGen's sublayer-class granularity."""
    config = LiaConfig()
    lia = plan_layer_residency(opt_30b, spr_a100, request_b1, config)
    flexgen = plan_sublayer_residency(opt_30b, spr_a100, request_b1,
                                      config)
    assert (resident_weight_fraction(opt_30b, lia)
            >= resident_weight_fraction(opt_30b, flexgen))


def test_disabled_residency_is_empty(opt_30b, spr_a100, request_b1):
    config = LiaConfig(gpu_residency=False)
    plan = plan_layer_residency(opt_30b, spr_a100, request_b1, config)
    assert plan.n_resident_layers == 0
    assert plan.resident_bytes == 0.0
    flexgen = plan_sublayer_residency(opt_30b, spr_a100, request_b1,
                                      config)
    assert flexgen.resident_sublayers == ()


def test_residency_shrinks_with_batch(opt_30b, spr_a100):
    config = LiaConfig()
    small = plan_layer_residency(opt_30b, spr_a100,
                                 InferenceRequest(1, 256, 32), config)
    large = plan_layer_residency(opt_30b, spr_a100,
                                 InferenceRequest(512, 256, 32), config)
    assert large.n_resident_layers <= small.n_resident_layers


def test_large_model_fewer_layers_resident(opt_30b, opt_175b, spr_a100):
    # §7.2: with OPT-175B fewer decoder layers fit on the GPU.
    config = LiaConfig(enforce_host_capacity=False)
    request = InferenceRequest(1, 256, 32)
    small = plan_layer_residency(opt_30b, spr_a100, request, config)
    big = plan_layer_residency(opt_175b, spr_a100, request, config)
    assert big.resident_fraction < small.resident_fraction


def test_sublayer_class_bytes(opt_30b):
    d = opt_30b.d_model
    n = opt_30b.n_layers
    assert sublayer_class_bytes(opt_30b, Sublayer.QKV_MAPPING) == \
        6 * d * d * n
    assert sublayer_class_bytes(opt_30b, Sublayer.FC1) == 8 * d * d * n
    assert sublayer_class_bytes(opt_30b, Sublayer.ATTENTION_SCORE) == 0.0


def test_sublayer_plan_packs_smallest_first(opt_30b, spr_a100,
                                            request_b1):
    plan = plan_sublayer_residency(opt_30b, spr_a100, request_b1,
                                   LiaConfig())
    if plan.resident_sublayers:
        # The smallest parameter class (output projection) packs first.
        assert Sublayer.OUTPUT_PROJECTION in plan.resident_sublayers


def test_extra_reserved_bytes_shrink_plan(opt_30b, spr_a100, request_b1):
    config = LiaConfig()
    free = plan_sublayer_residency(opt_30b, spr_a100, request_b1, config)
    squeezed = plan_sublayer_residency(
        opt_30b, spr_a100, request_b1, config,
        extra_reserved_bytes=20 * 2**30)
    assert squeezed.resident_bytes <= free.resident_bytes
