"""Tests of the estimator hot-path caches (repro.core.cache)."""

import pytest

from repro.core.cache import (
    LAYER_LATENCY_CACHE,
    OPTIMAL_POLICY_CACHE,
    LruCache,
    cache_stats,
    cache_token,
    cached_layer_latency,
    clear_caches,
)
from repro.core.config import LiaConfig
from repro.core.latency import layer_latency
from repro.core.optimizer import optimal_policy
from repro.core.policy import OffloadPolicy
from repro.hardware.system import SYSTEM_ZOO, get_system
from repro.models.sublayers import Stage
from repro.models.zoo import MODEL_ZOO, get_model
from repro.telemetry import Telemetry, activate


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestLruCache:
    def test_computes_once_per_key(self):
        cache = LruCache("t", maxsize=4)
        calls = []

        def compute():
            calls.append(1)
            return 42

        assert cache.get_or_compute("k", compute) == 42
        assert cache.get_or_compute("k", compute) == 42
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_evicts_least_recently_used(self):
        cache = LruCache("t", maxsize=2)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("a", lambda: 1)   # refresh a
        cache.get_or_compute("c", lambda: 3)   # evicts b
        calls = []
        cache.get_or_compute("b", lambda: calls.append(1) or 2)
        assert calls == [1]  # b was recomputed
        cache.get_or_compute("c", lambda: calls.append(2) or 3)
        assert calls == [1]  # c survived (more recent than a)

    def test_clear_resets_counters(self):
        cache = LruCache("t", maxsize=4)
        cache.get_or_compute("k", lambda: 1)
        cache.get_or_compute("k", lambda: 1)
        cache.clear()
        assert cache.hits == 0 and cache.misses == 0
        assert cache.stats()["size"] == 0

    def test_emits_telemetry_counters(self):
        telemetry = Telemetry()
        cache = LruCache("series", maxsize=4)
        with activate(telemetry):
            cache.get_or_compute("k", lambda: 1)
            cache.get_or_compute("k", lambda: 1)
        assert telemetry.metrics.counter_value(
            "cache.misses", cache="series") == 1
        assert telemetry.metrics.counter_value(
            "cache.hits", cache="series") == 1


class TestCacheToken:
    def test_hashable_objects_pass_through(self):
        spec = get_model("opt-30b")
        assert cache_token(spec) is spec
        assert cache_token(7) == 7

    def test_unhashable_objects_get_stable_identity_token(self):
        system = get_system("spr-a100")
        with pytest.raises(TypeError):
            hash(system)  # CpuSpec.engines is a dict
        assert cache_token(system) == cache_token(system)

    def test_distinct_unhashable_objects_get_distinct_tokens(self):
        tokens = {cache_token(SYSTEM_ZOO[name]) for name in SYSTEM_ZOO}
        assert len(tokens) == len(SYSTEM_ZOO)


class TestCachedLayerLatency:
    def test_bit_identical_to_uncached(self):
        """Property: cached results match direct calls exactly."""
        config = LiaConfig(enforce_host_capacity=False)
        policies = [OffloadPolicy.from_string("000000"),
                    OffloadPolicy.from_string("111111"),
                    OffloadPolicy.from_string("111000")]
        for model in ("opt-6.7b", "opt-30b"):
            spec = get_model(model)
            system = get_system("spr-a100")
            for stage in Stage:
                for policy in policies:
                    for batch, length in [(1, 32), (16, 256), (64, 1024)]:
                        direct = layer_latency(
                            spec, stage, policy, batch, length, system,
                            config)
                        cached = cached_layer_latency(
                            spec, stage, policy, batch, length, system,
                            config)
                        again = cached_layer_latency(
                            spec, stage, policy, batch, length, system,
                            config)
                        assert cached == direct
                        assert again == direct

    def test_cache_disabled_bypasses_store(self):
        spec = get_model("opt-30b")
        system = get_system("spr-a100")
        config = LiaConfig(enforce_host_capacity=False,
                           cache_enabled=False)
        cached_layer_latency(spec, Stage.DECODE,
                             OffloadPolicy.from_string("111111"), 1, 128, system,
                             config)
        assert LAYER_LATENCY_CACHE.stats()["size"] == 0

    def test_distinct_systems_do_not_collide(self):
        """Identity tokens must keep unhashable systems apart."""
        spec = get_model("opt-30b")
        config = LiaConfig(enforce_host_capacity=False)
        # Full-GPU policy: the A100 and H100 differ, so a key
        # collision between the two systems would be visible.
        policy = OffloadPolicy.from_string("000000")
        for name in ("spr-a100", "spr-h100"):
            system = get_system(name)
            cached = cached_layer_latency(spec, Stage.DECODE, policy,
                                          16, 512, system, config)
            direct = layer_latency(spec, Stage.DECODE, policy, 16, 512,
                                   system, config)
            assert cached == direct
        assert (cached_layer_latency(spec, Stage.DECODE, policy, 16,
                                     512, get_system("spr-a100"),
                                     config)
                != cached_layer_latency(spec, Stage.DECODE, policy, 16,
                                        512, get_system("spr-h100"),
                                        config))


class TestOptimalPolicyCache:
    def test_cached_decision_is_bit_identical(self):
        spec = get_model("opt-30b")
        system = get_system("spr-a100")
        config = LiaConfig(enforce_host_capacity=False)
        first = optimal_policy(spec, Stage.DECODE, 16, 512, system,
                               config)
        clear_caches()
        uncached = optimal_policy(spec, Stage.DECODE, 16, 512, system,
                                  config.without_cache())
        recomputed = optimal_policy(spec, Stage.DECODE, 16, 512, system,
                                    config)
        hit = optimal_policy(spec, Stage.DECODE, 16, 512, system, config)
        assert (first.policy == uncached.policy == recomputed.policy
                == hit.policy)
        assert first.layer == uncached.layer == hit.layer
        assert OPTIMAL_POLICY_CACHE.hits >= 1

    def test_logical_counters_increment_on_hits(self):
        """policy.searches counts calls, not cache misses."""
        spec = get_model("opt-30b")
        system = get_system("spr-a100")
        config = LiaConfig(enforce_host_capacity=False)
        telemetry = Telemetry()
        with activate(telemetry):
            optimal_policy(spec, Stage.DECODE, 4, 64, system, config)
            optimal_policy(spec, Stage.DECODE, 4, 64, system, config)
        assert telemetry.metrics.counter_value(
            "policy.searches", stage="decode") == 2
        assert telemetry.metrics.counter_value(
            "policy.evaluations", stage="decode") == 128

    def test_cache_stats_lists_both_caches(self):
        names = {entry["cache"] for entry in cache_stats()}
        assert names == {"layer_latency", "optimal_policy", "estimate",
                         "stall_outcome"}


class TestEstimatorCacheProperty:
    @pytest.mark.parametrize("model", sorted(MODEL_ZOO)[:4])
    def test_estimates_identical_with_and_without_cache(self, model):
        from repro.core.estimator import LiaEstimator
        from repro.models.workload import InferenceRequest

        spec = get_model(model)
        system = get_system("spr-a100")
        request = InferenceRequest(4, 64, 16)
        base = LiaConfig(enforce_host_capacity=False)
        cold = LiaEstimator(spec, system, base).estimate(request)
        warm = LiaEstimator(spec, system, base).estimate(request)
        off = LiaEstimator(spec, system,
                           base.without_cache()).estimate(request)
        assert cold.latency == warm.latency == off.latency
        assert cold.decode == warm.decode == off.decode
