"""The Eq. (2)-(9) decoder-layer latency model."""

import pytest

from repro.core.config import LiaConfig
from repro.core.latency import layer_latency
from repro.core.policy import FULL_CPU, FULL_GPU, PARTIAL_CPU, OffloadPolicy
from repro.errors import ConfigurationError
from repro.models.sublayers import Stage, Sublayer, sublayer_cost
from repro.models.zoo import get_model


@pytest.fixture
def config():
    return LiaConfig()


def _layer(spec, system, policy, stage=Stage.DECODE, batch=4,
           length=128, config=None, **kwargs):
    return layer_latency(spec, stage, policy, batch, length, system,
                         config or LiaConfig(), **kwargs)


def test_full_cpu_has_no_transfers(opt_175b, spr_a100):
    layer = _layer(opt_175b, spr_a100, FULL_CPU)
    assert layer.transfer == 0.0
    assert layer.gpu_compute == 0.0
    assert layer.cpu_compute > 0.0


def test_full_gpu_decode_transfers_weights_and_kv(opt_175b, spr_a100):
    layer = _layer(opt_175b, spr_a100, FULL_GPU)
    by_sub = {s.sublayer: s for s in layer.sublayers}
    link_bw = spr_a100.host_link.bandwidth
    for sub in Sublayer:
        cost = sublayer_cost(opt_175b, sub, Stage.DECODE, 4, 128)
        expected = (spr_a100.host_link.setup_latency
                    + cost.d_y / link_bw)
        assert by_sub[sub].t_load_y == pytest.approx(expected, rel=1e-6)
    # Eq. (9): KV store back to host for sublayer 1.
    assert by_sub[Sublayer.QKV_MAPPING].t_store > 0.0


def test_weight_transfer_prefetchable_kv_not(opt_175b, spr_a100):
    layer = _layer(opt_175b, spr_a100, FULL_GPU)
    by_sub = {s.sublayer: s for s in layer.sublayers}
    assert by_sub[Sublayer.FC1].y_prefetchable
    assert not by_sub[Sublayer.ATTENTION_SCORE].y_prefetchable
    assert (layer.prefetchable_transfer + layer.dependent_transfer
            == pytest.approx(layer.transfer))


def test_eq4_activation_crossings(opt_175b, spr_a100):
    layer = _layer(opt_175b, spr_a100, PARTIAL_CPU)
    by_sub = {s.sublayer: s for s in layer.sublayers}
    # Crossings at sublayers 2 (GPU->CPU) and 4 (CPU->GPU).
    assert by_sub[Sublayer.ATTENTION_SCORE].t_load_x > 0.0
    assert by_sub[Sublayer.OUTPUT_PROJECTION].t_load_x > 0.0
    assert by_sub[Sublayer.QKV_MAPPING].t_load_x == 0.0
    assert by_sub[Sublayer.FC1].t_load_x == 0.0


def test_eq6_residual_transfer(opt_175b, spr_a100):
    # Policy (1,0,0,0,0,0): sublayer 4's residual comes from sublayer
    # 1's input on the CPU while sublayer 4 runs on the GPU.
    policy = OffloadPolicy.from_string("100000")
    layer = _layer(opt_175b, spr_a100, policy)
    by_sub = {s.sublayer: s for s in layer.sublayers}
    assert by_sub[Sublayer.OUTPUT_PROJECTION].t_load_r > 0.0
    assert by_sub[Sublayer.FC2].t_load_r == 0.0


def test_eq7_prefill_kv_follows_sublayer1(opt_175b, spr_a100):
    # Prefill with sublayer 1 on CPU and scoring on GPU: K/V transfer.
    policy = OffloadPolicy.from_string("100111")
    layer = _layer(opt_175b, spr_a100, policy, stage=Stage.PREFILL)
    by_sub = {s.sublayer: s for s in layer.sublayers}
    assert by_sub[Sublayer.ATTENTION_SCORE].t_load_y > 0.0
    # Same device as sublayer 1 -> free.
    policy_same = OffloadPolicy.from_string("110111")
    layer_same = _layer(opt_175b, spr_a100, policy_same,
                        stage=Stage.PREFILL)
    by_sub_same = {s.sublayer: s for s in layer_same.sublayers}
    assert by_sub_same[Sublayer.ATTENTION_SCORE].t_load_y == 0.0


def test_weights_resident_removes_weight_loads(opt_175b, spr_a100):
    streamed = _layer(opt_175b, spr_a100, FULL_GPU)
    resident = _layer(opt_175b, spr_a100, FULL_GPU,
                      weights_resident=True)
    assert resident.prefetchable_transfer == 0.0
    assert resident.total < streamed.total


def test_resident_sublayer_classes(opt_175b, spr_a100):
    partial = _layer(opt_175b, spr_a100, FULL_GPU,
                     resident_sublayers=(Sublayer.FC1, Sublayer.FC2))
    by_sub = {s.sublayer: s for s in partial.sublayers}
    assert by_sub[Sublayer.FC1].t_load_y == 0.0
    assert by_sub[Sublayer.QKV_MAPPING].t_load_y > 0.0


def test_kv_resident_flips_kv_direction(opt_175b, spr_a100):
    # KV on GPU + GPU attention: no KV loads, no store.
    layer = _layer(opt_175b, spr_a100, FULL_GPU, kv_resident=True)
    by_sub = {s.sublayer: s for s in layer.sublayers}
    assert by_sub[Sublayer.ATTENTION_SCORE].t_load_y == 0.0
    assert by_sub[Sublayer.QKV_MAPPING].t_store == 0.0
    # KV on GPU + CPU attention: loads flow the other way.
    layer_cpu = _layer(opt_175b, spr_a100, FULL_CPU, kv_resident=True)
    by_sub_cpu = {s.sublayer: s for s in layer_cpu.sublayers}
    assert by_sub_cpu[Sublayer.ATTENTION_SCORE].t_load_y > 0.0
    assert by_sub_cpu[Sublayer.QKV_MAPPING].t_store > 0.0


def test_more_pcie_bandwidth_never_hurts(opt_175b, spr_a100, spr_h100):
    for policy in (FULL_GPU, PARTIAL_CPU):
        slow = _layer(opt_175b, spr_a100, policy)
        # H100 system: 2x PCIe bandwidth (plus faster GPU).
        fast = _layer(opt_175b, spr_h100, policy)
        assert fast.transfer <= slow.transfer


def test_decode_latency_monotone_in_batch(opt_175b, spr_a100):
    totals = [
        _layer(opt_175b, spr_a100, FULL_CPU, batch=b).total
        for b in (1, 8, 64, 512)]
    assert totals == sorted(totals)


def test_decode_kv_terms_grow_with_context(opt_175b, spr_a100):
    short = _layer(opt_175b, spr_a100, FULL_CPU, length=64)
    long = _layer(opt_175b, spr_a100, FULL_CPU, length=2048)
    assert long.total > short.total


def test_cxl_weights_degrade_cpu_param_sublayers(opt_175b, spr_a100):
    system = spr_a100.with_cxl(n_expanders=2)
    ddr_config = LiaConfig()
    cxl_config = LiaConfig().with_cxl_weights()
    ddr = _layer(opt_175b, system, FULL_CPU, config=ddr_config)
    cxl = _layer(opt_175b, system, FULL_CPU, config=cxl_config)
    # Observation-2: CPU compute on CXL-resident weights is slower.
    assert cxl.cpu_compute > ddr.cpu_compute


def test_cxl_weights_do_not_hurt_gpu_transfers(opt_175b, spr_a100):
    # Observation-1: two interleaved expanders (34 GB/s) keep PCIe 4.0
    # (29.4 GB/s effective) saturated.
    system = spr_a100.with_cxl(n_expanders=2)
    ddr = _layer(opt_175b, system, FULL_GPU, config=LiaConfig())
    cxl = _layer(opt_175b, system, FULL_GPU,
                 config=LiaConfig().with_cxl_weights())
    assert cxl.transfer == pytest.approx(ddr.transfer, rel=1e-6)


def test_single_cxl_expander_throttles_pcie(opt_175b, spr_a100):
    system = spr_a100.with_cxl(n_expanders=1)
    ddr = _layer(opt_175b, system, FULL_GPU, config=LiaConfig())
    cxl = _layer(opt_175b, system, FULL_GPU,
                 config=LiaConfig().with_cxl_weights())
    assert cxl.transfer > ddr.transfer * 1.3


def test_cxl_placement_requires_expanders(opt_175b, spr_a100):
    with pytest.raises(ConfigurationError, match="no CXL"):
        _layer(opt_175b, spr_a100, FULL_CPU,
               config=LiaConfig().with_cxl_weights())


def test_transfer_bytes_accounting(opt_175b, spr_a100):
    """The recorded PCIe bytes match the Table 1 sizes for the
    transfers the policy fires — and only those."""
    from repro.models.sublayers import sublayer_cost

    layer = _layer(opt_175b, spr_a100, FULL_GPU)
    by_sub = {s.sublayer: s for s in layer.sublayers}
    expected = 0.0
    for sub in Sublayer:
        cost = sublayer_cost(opt_175b, sub, Stage.DECODE, 4, 128)
        assert by_sub[sub].bytes_y == cost.d_y  # everything streams
        expected += cost.d_y
    expected += by_sub[Sublayer.QKV_MAPPING].cost.d_kv_out
    assert layer.transfer_bytes == pytest.approx(expected)

    cpu_layer = _layer(opt_175b, spr_a100, FULL_CPU)
    assert cpu_layer.transfer_bytes == 0.0

    partial = _layer(opt_175b, spr_a100, PARTIAL_CPU)
    # Attention on CPU: no KV bytes, but activation crossings appear.
    by_sub_p = {s.sublayer: s for s in partial.sublayers}
    assert by_sub_p[Sublayer.ATTENTION_SCORE].bytes_y == 0.0
    assert by_sub_p[Sublayer.ATTENTION_SCORE].bytes_x > 0.0
