"""End-to-end LIA estimation."""

import pytest

from repro.core.config import LiaConfig
from repro.core.estimator import (
    LiaEstimator,
    check_host_capacity,
    host_memory_usage,
)
from repro.core.policy import FULL_CPU, FULL_GPU
from repro.errors import CapacityError
from repro.models.workload import InferenceRequest
from repro.models.zoo import get_model


def test_table4_b1_latency_near_paper(opt_30b, spr_a100, eval_config):
    # Table 4: 5.05 s for OPT-30B, B=1, L_in=256, L_out=32.
    estimate = LiaEstimator(opt_30b, spr_a100, eval_config).estimate(
        InferenceRequest(1, 256, 32))
    assert 3.0 <= estimate.latency <= 8.0


def test_table5_b1_breakdown_shape(opt_30b, spr_a100, eval_config):
    # Table 5 (overlap off): CPU 3.8, GPU 1.2, Com 0.1 seconds.
    estimate = LiaEstimator(opt_30b, spr_a100,
                            eval_config.without_overlap()).estimate(
        InferenceRequest(1, 256, 32))
    total = estimate.total
    assert 2.0 <= total.cpu_compute <= 6.0
    assert 0.5 <= total.gpu_compute <= 2.5
    assert total.transfer <= 0.5
    assert total.cpu_compute > total.gpu_compute > total.transfer


def test_policies_match_fig9(opt_175b, spr_a100, eval_config):
    estimator = LiaEstimator(opt_175b, spr_a100, eval_config)
    online = estimator.estimate(InferenceRequest(1, 256, 32))
    assert online.prefill_policy == FULL_CPU
    assert online.decode_policy == FULL_CPU
    offline = estimator.estimate(InferenceRequest(900, 256, 8))
    assert offline.prefill_policy == FULL_GPU
    assert str(offline.decode_policy) == "(0, 1, 1, 0, 0, 0)"


def test_latency_decomposes_into_stages(opt_30b, spr_a100, eval_config):
    estimate = LiaEstimator(opt_30b, spr_a100, eval_config).estimate(
        InferenceRequest(4, 128, 16))
    assert estimate.latency == pytest.approx(
        estimate.prefill.time + estimate.decode.time)
    assert estimate.throughput == pytest.approx(
        4 * 16 / estimate.latency)


def test_longer_output_costs_more(opt_30b, spr_a100, eval_config):
    estimator = LiaEstimator(opt_30b, spr_a100, eval_config)
    short = estimator.estimate(InferenceRequest(1, 256, 16))
    long = estimator.estimate(InferenceRequest(1, 256, 64))
    assert long.latency > short.latency
    assert long.decode.time > short.decode.time


def test_host_capacity_enforced_by_default(opt_175b, spr_a100):
    estimator = LiaEstimator(opt_175b, spr_a100, LiaConfig())
    with pytest.raises(CapacityError, match="DDR"):
        estimator.estimate(InferenceRequest(900, 1024, 32))


def test_host_capacity_waivable(opt_175b, spr_a100, eval_config):
    estimator = LiaEstimator(opt_175b, spr_a100, eval_config)
    estimate = estimator.estimate(InferenceRequest(900, 1024, 32))
    assert estimate.latency > 0.0


def test_memory_accounting_places_pools(opt_30b, spr_a100):
    request = InferenceRequest(64, 256, 32)
    usage = host_memory_usage(opt_30b, request, spr_a100, LiaConfig())
    assert usage.weight_bytes == opt_30b.total_param_bytes
    assert usage.kv_bytes == opt_30b.kv_cache_bytes(64, 288)
    assert usage.cxl_bytes == 0.0
    assert usage.ddr_bytes == pytest.approx(
        usage.weight_bytes + usage.kv_bytes + usage.activation_bytes)


def test_cxl_placement_moves_weights(opt_30b, spr_a100):
    system = spr_a100.with_cxl()
    request = InferenceRequest(64, 256, 32)
    usage = host_memory_usage(opt_30b, request, system,
                              LiaConfig().with_cxl_weights())
    assert usage.cxl_bytes == usage.weight_bytes
    assert usage.ddr_bytes == pytest.approx(
        usage.kv_bytes + usage.activation_bytes)


def test_cxl_capacity_checked(opt_175b, spr_a100):
    system = spr_a100.with_cxl(n_expanders=2)  # 256 GiB < 349 GB
    request = InferenceRequest(1, 256, 32)
    usage = host_memory_usage(opt_175b, request, system,
                              LiaConfig().with_cxl_weights())
    with pytest.raises(CapacityError, match="CXL"):
        check_host_capacity(usage, system)


def test_max_feasible_batch_monotone_in_length(opt_30b, spr_a100):
    estimator = LiaEstimator(opt_30b, spr_a100, LiaConfig())
    short = estimator.max_feasible_batch(32, 32)
    long = estimator.max_feasible_batch(1024, 32)
    assert short > long > 0


def test_cxl_raises_max_batch(opt_30b, spr_a100):
    # The abstract's 900 -> 1.6K claim mechanism: CXL frees DDR.
    plain = LiaEstimator(opt_30b, spr_a100, LiaConfig())
    tiered = LiaEstimator(opt_30b, spr_a100.with_cxl(),
                          LiaConfig().with_cxl_weights())
    assert (tiered.max_feasible_batch(1024, 32)
            > plain.max_feasible_batch(1024, 32))


def test_h100_faster_than_a100(opt_175b, spr_a100, spr_h100,
                               eval_config):
    # §7.2: LIA on SPR-H100 is 1.1-1.3x faster than on SPR-A100.
    request = InferenceRequest(1, 256, 32)
    a100 = LiaEstimator(opt_175b, spr_a100, eval_config).estimate(request)
    h100 = LiaEstimator(opt_175b, spr_h100, eval_config).estimate(request)
    assert 1.0 <= a100.latency / h100.latency <= 1.6


def test_residency_reported(opt_30b, spr_a100, eval_config):
    estimate = LiaEstimator(opt_30b, spr_a100, eval_config).estimate(
        InferenceRequest(1, 256, 32))
    assert estimate.residency.n_resident_layers > 0
    assert estimate.memory.gpu_bytes > 0
