"""CSV export."""

import csv

import pytest

from repro.errors import ConfigurationError
from repro.experiments.export import default_drivers, export_all, to_csv
from repro.experiments.reporting import ExperimentResult


def _result():
    result = ExperimentResult("t1", "a test")
    result.add_row(a=1, b="x")
    result.add_row(a=2, b="y", c=3.5)
    return result


def test_to_csv_roundtrip(tmp_path):
    path = to_csv(_result(), tmp_path / "out.csv")
    lines = path.read_text().splitlines()
    assert lines[0] == "# t1: a test"
    rows = list(csv.DictReader(lines[1:]))
    assert rows[0] == {"a": "1", "b": "x", "c": ""}
    assert rows[1] == {"a": "2", "b": "y", "c": "3.5"}


def test_to_csv_creates_directories(tmp_path):
    path = to_csv(_result(), tmp_path / "deep" / "dir" / "out.csv")
    assert path.exists()


def test_empty_result_rejected(tmp_path):
    with pytest.raises(ConfigurationError):
        to_csv(ExperimentResult("t", "t"), tmp_path / "x.csv")


def test_registry_covers_all_paper_artifacts():
    drivers = default_drivers()
    for name in ("fig01", "fig03", "fig04", "fig05", "fig08", "fig09",
                 "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
                 "tab3", "tab4", "tab5", "tab6", "sec72", "sec77", "sec8-gh",
                 "sec8-v100", "sec8-cxl-cost", "ext-int8",
                 "ext-multigpu"):
        assert name in drivers


def test_export_all_subset(tmp_path):
    written = export_all(tmp_path, experiment_ids=["fig01", "tab5"])
    names = sorted(p.name for p in written)
    assert names == ["fig01.csv", "tab5.csv"]
    assert all(p.exists() for p in written)


def test_export_all_unknown_id(tmp_path):
    with pytest.raises(ConfigurationError, match="unknown"):
        export_all(tmp_path, experiment_ids=["fig99"])
