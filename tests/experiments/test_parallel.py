"""Tests of the process-parallel sweep executor.

The kernels under test live at module top level and are addressed via
the ``"module:attr"`` escape hatch, so spawned workers (which know
nothing about the parent's registry mutations) re-import them by
name.
"""

import os
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from multiprocessing import shared_memory

from repro.core.cache import clear_caches
from repro.core.config import LiaConfig
from repro.errors import ConfigurationError, SweepWorkerError
from repro.experiments.parallel import (
    PROCESSES_ENV,
    KernelCall,
    SharedWorkload,
    chunk_bounds,
    default_processes,
    kernel_names,
    publish_array,
    publish_workload,
    published_segments,
    release,
    release_workload,
    resolve_kernel,
    retain,
    run_process_sweep,
    sweep_generator,
    sweep_kernel,
    sweep_rng,
)
from repro.experiments.runner import run_sweep
from repro.models.workload import InferenceRequest
from repro.serving.vectorized import WorkloadVector
from repro.telemetry import Telemetry, activate

SELF = "tests.experiments.test_parallel"


# ----------------------------------------------------------------------
# Kernels importable from spawned workers
# ----------------------------------------------------------------------
def square_kernel(offset=0):
    return lambda point: point * point + offset


def slow_head_kernel():
    # The first points are much slower than the rest, so with >1
    # worker the later chunks finish first — ordering must not care.
    def run(point):
        if point < 4:
            time.sleep(0.05)
        return point * 10

    return run


def faulty_kernel():
    def run(point):
        if point == 5:
            raise ValueError(f"bad point {point}")
        return point

    return run


def crash_kernel():
    def run(point):
        if point == 7:
            os._exit(13)
        return point

    return run


def shm_sum_kernel(handle):
    array = handle.array()

    def run(point):
        return float(array[point:point + 2].sum())

    return run


def write_attempt_kernel(handle):
    def run(point):
        array = handle.array()
        try:
            array[0] = -1.0
        except ValueError:
            return "read-only"
        return "writable"

    return run


def telemetry_kernel():
    def run(point):
        from repro.telemetry.runtime import current

        active = current()
        if active is not None:
            active.metrics.counter("parallel.test",
                                   parity=str(point % 2)).inc()
            active.metrics.histogram("parallel.values").observe(
                float(point))
        return point

    return run


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtin_kernels_registered(self):
        names = kernel_names()
        for expected in ("estimate", "fig09.policy", "fig10.latency",
                         "fig11.throughput", "fleet.cell", "policy_map",
                         "replicas.fleet_size", "scheduler.step"):
            assert expected in names

    def test_unknown_kernel_is_one_line_error(self):
        with pytest.raises(ConfigurationError, match="unknown sweep"):
            resolve_kernel("no-such-kernel")

    def test_duplicate_registration_rejected(self):
        @sweep_kernel("parallel-test-dup")
        def first():
            return lambda p: p

        with pytest.raises(ConfigurationError, match="already"):
            @sweep_kernel("parallel-test-dup")
            def second():
                return lambda p: p

    def test_module_attr_resolution(self):
        factory = resolve_kernel(f"{SELF}:square_kernel")
        assert factory is square_kernel

    def test_module_attr_missing_attr(self):
        with pytest.raises(ConfigurationError, match="no kernel"):
            resolve_kernel(f"{SELF}:not_there")

    def test_module_attr_missing_module(self):
        with pytest.raises(ConfigurationError, match="cannot import"):
            resolve_kernel("tests.experiments.nope:thing")

    def test_kernel_call_is_callable_in_process(self):
        call = KernelCall(f"{SELF}:square_kernel", (3,))
        assert call(4) == 19


class TestDefaultProcesses:
    def test_unset_disables(self, monkeypatch):
        monkeypatch.delenv(PROCESSES_ENV, raising=False)
        assert default_processes() == 0

    def test_value_passes_through_uncapped(self, monkeypatch):
        monkeypatch.setenv(PROCESSES_ENV, "64")
        assert default_processes() == 64

    def test_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv(PROCESSES_ENV, "lots")
        with pytest.raises(ConfigurationError):
            default_processes()

    def test_negative_rejected(self, monkeypatch):
        monkeypatch.setenv(PROCESSES_ENV, "-1")
        with pytest.raises(ConfigurationError):
            default_processes()


# ----------------------------------------------------------------------
# Chunking
# ----------------------------------------------------------------------
class TestChunkBounds:
    def test_covers_every_point_in_order(self):
        for n in (1, 2, 31, 32, 33, 100, 1000):
            bounds = chunk_bounds(n)
            flat = [i for start, stop in bounds
                    for i in range(start, stop)]
            assert flat == list(range(n))

    def test_empty(self):
        assert chunk_bounds(0) == []

    def test_depends_only_on_point_count(self):
        # The invariance lever: the same n always chunks the same way,
        # so telemetry merge order never varies with the pool size.
        assert chunk_bounds(100) == chunk_bounds(100)
        assert len(chunk_bounds(1000)) <= 32


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
class TestRunProcessSweep:
    def test_results_in_input_order(self):
        points = list(range(40))
        out = run_process_sweep(
            KernelCall(f"{SELF}:square_kernel"), points, processes=2)
        assert out == [p * p for p in points]

    def test_ordered_under_unequal_chunk_costs(self):
        points = list(range(40))
        out = run_process_sweep(
            KernelCall(f"{SELF}:slow_head_kernel"), points, processes=2)
        assert out == [p * 10 for p in points]

    def test_processes_zero_runs_in_process(self):
        out = run_process_sweep(
            KernelCall(f"{SELF}:square_kernel", (1,)), [1, 2, 3],
            processes=0)
        assert out == [2, 5, 10]

    def test_empty_points(self):
        assert run_process_sweep(
            KernelCall(f"{SELF}:square_kernel"), [], processes=2) == []

    def test_first_exception_propagates(self):
        with pytest.raises(ValueError, match="bad point 5"):
            run_process_sweep(
                KernelCall(f"{SELF}:faulty_kernel"), list(range(40)),
                processes=2)

    def test_worker_crash_is_one_line_error(self):
        # Depending on timing the worker dies while chunks are still
        # being submitted or after — both must surface as a one-line
        # SweepWorkerError naming the kernel and the bisect hint.
        with pytest.raises(SweepWorkerError,
                           match=r"worker died.*crash_kernel.*"
                                 r"REPRO_SWEEP_PROCESSES=0"):
            run_process_sweep(
                KernelCall(f"{SELF}:crash_kernel"), list(range(40)),
                processes=2)
        # The broken pool was discarded; the next sweep gets a fresh
        # one and succeeds.
        out = run_process_sweep(
            KernelCall(f"{SELF}:square_kernel"), [1, 2], processes=2)
        assert out == [1, 4]

    def test_single_worker_pool_matches_serial(self):
        points = list(range(10))
        serial = run_process_sweep(
            KernelCall(f"{SELF}:square_kernel"), points, processes=0)
        pooled = run_process_sweep(
            KernelCall(f"{SELF}:square_kernel"), points, processes=1)
        assert serial == pooled

    def test_run_sweep_routes_kernel_calls(self):
        points = list(range(8))
        assert run_sweep(KernelCall(f"{SELF}:square_kernel"), points,
                         processes=2) == [p * p for p in points]

    def test_run_sweep_keeps_closures_on_threads(self, monkeypatch):
        # A plain closure cannot cross the process boundary; the
        # runner must not try.
        import repro.experiments.runner as runner

        def explode(*args, **kwargs):
            raise AssertionError("closure reached the process pool")

        monkeypatch.setattr(runner, "run_process_sweep", explode)
        assert run_sweep(lambda p: p + 1, [1, 2, 3],
                         processes=4) == [2, 3, 4]


# ----------------------------------------------------------------------
# Keyed RNG
# ----------------------------------------------------------------------
class TestKeyedRng:
    def test_same_key_same_stream(self):
        assert sweep_rng(3, 7).random() == sweep_rng(3, 7).random()
        a = sweep_generator(3, 7).random(4)
        b = sweep_generator(3, 7).random(4)
        assert np.array_equal(a, b)

    def test_different_index_different_stream(self):
        assert sweep_rng(3, 7).random() != sweep_rng(3, 8).random()

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_rng(0, -1)
        with pytest.raises(ConfigurationError):
            sweep_generator(0, -1)


# ----------------------------------------------------------------------
# Shared memory
# ----------------------------------------------------------------------
class TestSharedMemory:
    def test_publish_attach_roundtrip(self):
        source = np.arange(16, dtype=np.float64)
        handle = publish_array(source)
        try:
            view = handle.array()
            assert np.array_equal(view, source)
            assert not view.flags.writeable
        finally:
            release(handle)

    def test_release_unlinks_segment(self):
        handle = publish_array(np.ones(4))
        name = handle.name
        release(handle)
        assert name not in published_segments()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_refcounting(self):
        handle = publish_array(np.ones(4))
        retain(handle)
        release(handle)
        assert handle.name in published_segments()
        release(handle)
        assert handle.name not in published_segments()

    def test_release_is_idempotent(self):
        handle = publish_array(np.ones(4))
        release(handle)
        release(handle)

    def test_retain_unpublished_rejected(self):
        from repro.experiments.parallel import ShmArrayHandle

        with pytest.raises(ConfigurationError, match="not published"):
            retain(ShmArrayHandle(name="psm_nope", shape=(1,),
                                  dtype="<f8"))

    def test_workers_read_shared_array(self):
        source = np.arange(32, dtype=np.float64)
        handle = publish_array(source)
        try:
            out = run_process_sweep(
                KernelCall(f"{SELF}:shm_sum_kernel", (handle,)),
                list(range(8)), processes=2)
            expected = [float(source[p:p + 2].sum())
                        for p in range(8)]
            assert out == expected
        finally:
            release(handle)

    def test_worker_views_are_read_only(self):
        handle = publish_array(np.ones(8))
        try:
            out = run_process_sweep(
                KernelCall(f"{SELF}:write_attempt_kernel", (handle,)),
                [0, 1], processes=2)
            assert out == ["read-only", "read-only"]
        finally:
            release(handle)

    def test_shared_workload_roundtrip(self):
        workload = WorkloadVector.sample_mix(
            (InferenceRequest(1, 8, 4), InferenceRequest(2, 16, 8)),
            64, seed=5)
        shared = publish_workload(workload)
        try:
            attached = shared.attach()
            assert attached.shapes == workload.shapes
            assert np.array_equal(attached.codes, workload.codes)
        finally:
            release_workload(shared)
        assert shared.codes.name not in published_segments()

    def test_no_segment_leak_across_sweeps(self):
        # Sweeps that publish must release: the leak test other
        # modules rely on between pytest runs.
        before = published_segments()
        handle = publish_array(np.zeros(128))
        run_process_sweep(
            KernelCall(f"{SELF}:shm_sum_kernel", (handle,)),
            [0, 1, 2], processes=2)
        release(handle)
        assert published_segments() == before


# ----------------------------------------------------------------------
# Telemetry merge determinism
# ----------------------------------------------------------------------
def _counter_rows(telemetry):
    return [row for row in telemetry.metrics.snapshot()
            if row["type"] == "counter"
            and row["metric"] != "telemetry.chunks"]


class TestTelemetryMerge:
    def test_counters_match_serial_exactly(self):
        points = list(range(24))
        serial = Telemetry()
        with activate(serial):
            run_process_sweep(KernelCall(f"{SELF}:telemetry_kernel"),
                              points, processes=0)
        pooled = Telemetry()
        with activate(pooled):
            run_process_sweep(KernelCall(f"{SELF}:telemetry_kernel"),
                              points, processes=2)
        assert _counter_rows(serial) == _counter_rows(pooled)
        assert pooled.metrics.counter_value("telemetry.chunks") > 0

    def test_histograms_merge_deterministically(self):
        points = list(range(50))
        runs = []
        for processes in (1, 2, 4):
            telemetry = Telemetry()
            with activate(telemetry):
                run_process_sweep(
                    KernelCall(f"{SELF}:telemetry_kernel"), points,
                    processes=processes)
            rows = [row for row in telemetry.metrics.snapshot()
                    if row["type"] == "histogram"]
            runs.append(rows)
        assert runs[0] == runs[1] == runs[2]

    def test_policy_counters_match_serial(self):
        # The satellite regression: ambient policy.*/cache.* counters
        # must flow out of process workers and merge to exactly the
        # serial totals.  Distinct grid points + a config no other
        # test uses keep both sides' caches equally cold.
        config = LiaConfig(enforce_host_capacity=False,
                           prefill_minibatches=7)
        call = KernelCall("policy_map",
                          ("opt-tiny", "spr-a100",
                           __import__("repro.models.sublayers",
                                      fromlist=["Stage"]).Stage.DECODE,
                           config))
        points = [(b, length) for b in (1, 3, 9, 27)
                  for length in (16, 48, 144)]
        clear_caches()
        serial = Telemetry()
        with activate(serial):
            serial_out = run_process_sweep(call, points, processes=0)
        clear_caches()
        pooled = Telemetry()
        with activate(pooled):
            pooled_out = run_process_sweep(call, points, processes=1)
        assert serial_out == pooled_out
        serial_rows = _counter_rows(serial)
        policy_rows = [row for row in serial_rows
                       if str(row["metric"]).startswith(
                           ("policy.", "cache."))]
        assert policy_rows, "expected policy/cache counters"
        assert serial_rows == _counter_rows(pooled)

    def test_no_telemetry_no_merge_overhead(self):
        out = run_process_sweep(
            KernelCall(f"{SELF}:telemetry_kernel"), list(range(6)),
            processes=2)
        assert out == list(range(6))


# ----------------------------------------------------------------------
# Worker-count invariance (property)
# ----------------------------------------------------------------------
@settings(max_examples=5, deadline=None)
@given(st.lists(st.tuples(st.integers(1, 4), st.integers(8, 64),
                          st.integers(1, 8)),
                min_size=2, max_size=8))
def test_estimates_invariant_across_process_counts(points):
    config = LiaConfig(enforce_host_capacity=False)
    call = KernelCall("estimate", ("opt-tiny", "spr-a100", config))
    baseline = [e.latency
                for e in run_process_sweep(call, points, processes=0)]
    for processes in (1, 2):
        latencies = [e.latency for e in run_process_sweep(
            call, points, processes=processes)]
        assert latencies == baseline
