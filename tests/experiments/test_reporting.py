"""Experiment result containers and table rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.reporting import (
    OOM,
    ExperimentResult,
    format_table,
)


@pytest.fixture
def result():
    res = ExperimentResult("t1", "test experiment")
    res.add_row(framework="lia", batch=1, value=1.5)
    res.add_row(framework="ipex", batch=1, value=3.0)
    res.add_row(framework="lia", batch=64, value=OOM)
    return res


def test_column_extraction(result):
    assert result.column("framework") == ["lia", "ipex", "lia"]


def test_select_filters(result):
    rows = result.select(framework="lia")
    assert len(rows) == 2
    assert result.select(framework="lia", batch=1)[0]["value"] == 1.5


def test_value_requires_unique_match(result):
    assert result.value("value", framework="ipex") == 3.0
    with pytest.raises(ConfigurationError, match="2 rows"):
        result.value("value", framework="lia")
    with pytest.raises(ConfigurationError, match="0 rows"):
        result.value("value", framework="flexgen")


def test_empty_column_raises():
    with pytest.raises(ConfigurationError):
        ExperimentResult("t", "t").column("x")


def test_render_contains_all_cells(result):
    text = result.render()
    assert "t1" in text
    assert "ipex" in text
    assert "OOM" in text


def test_format_table_alignment():
    rows = [{"a": 1, "bb": "x"}, {"a": 22, "bb": "yy"}]
    table = format_table(rows)
    lines = table.splitlines()
    assert lines[0].startswith("a")
    assert len({len(line) for line in lines}) <= 2  # aligned


def test_format_table_float_formatting():
    table = format_table([{"v": 0.000123}, {"v": 12345.6}, {"v": 1.5}])
    assert "0.000123" in table
    assert "1.23e+04" in table
    assert "1.5" in table


def test_format_table_empty():
    assert format_table([]) == "(no rows)"


def test_format_table_column_selection():
    rows = [{"a": 1, "b": 2}]
    table = format_table(rows, columns=["b"])
    assert "a" not in table.splitlines()[0]


def test_format_table_unions_heterogeneous_rows():
    rows = [{"panel": "a", "gb_per_s": 29.4},
            {"panel": "b", "series": "decode-S2", "ratio": 0.2}]
    table = format_table(rows)
    header = table.splitlines()[0]
    for column in ("panel", "gb_per_s", "series", "ratio"):
        assert column in header
    assert "decode-S2" in table
