"""Smoke and shape tests for the per-figure experiment drivers.

Heavyweight assertions (the paper's win/loss factors) live in
``benchmarks/``; these tests check each driver produces complete,
well-formed rows quickly on reduced grids.
"""

import pytest

from repro.experiments import (
    fig01_opsbyte,
    fig03_transfer_bottleneck,
    fig04_avx_attention,
    fig05_microbench,
    fig08_cxl,
    fig09_policy_map,
    fig10_online_latency,
    fig11_offline_throughput,
    fig12_energy,
    fig13_tab6_gnr,
    fig14_multigpu,
    fig15_powerinfer,
    sec77_generalizability,
    sec8_discussion,
    tab3_cxl_offloading,
    tab4_ablation,
    tab5_breakdown,
)
from repro.experiments.frameworks import build_estimator
from repro.errors import ConfigurationError
from repro.experiments.reporting import OOM


def test_fig01_rows():
    result = fig01_opsbyte.run()
    assert len(result.rows) == 12  # 2 stages x 6 sublayers
    assert all(row["ops_per_byte"] > 0 for row in result.rows)


def test_fig03_rows():
    result = fig03_transfer_bottleneck.run(batch_sizes=(1,),
                                           input_lens=(64, 512))
    assert len(result.rows) == 4
    assert all(0 <= row["transfer_share"] <= 1 for row in result.rows)


def test_fig04_rows():
    result = fig04_avx_attention.run(input_lens=(64, 1024))
    assert len(result.rows) == 2
    assert result.rows[0]["latency_reduction"] < \
        result.rows[1]["latency_reduction"]


def test_fig05_rows():
    result = fig05_microbench.run(engines=("spr-amx", "a100"),
                                  bl_values=(64,), gemv_batches=(8,))
    kinds = {(row["kind"], row["engine"]) for row in result.rows}
    assert ("gemm", "spr-amx") in kinds
    assert ("gemv", "a100") in kinds


def test_fig08_rows():
    result = fig08_cxl.run(sizes_mb=(1, 300), batch_sizes=(1, 64))
    panels = {row["panel"] for row in result.rows}
    assert panels == {"a", "b"}


def test_fig09_rows():
    result = fig09_policy_map.run(system_names=("spr-a100",),
                                  batch_sizes=(1,), input_lens=(32,))
    assert any(row["stage"] == "thresholds" for row in result.rows)


def test_fig10_rows():
    result = fig10_online_latency.run(
        pairs=(("spr-a100", "opt-30b"),), output_lens=(32,))
    assert len(result.rows) == 9  # 3 lengths x 3 frameworks
    lia = result.select(framework="lia")
    assert all(row["latency_s"] != OOM for row in lia)


def test_fig11_rows():
    result = fig11_offline_throughput.run(
        pairs=(("spr-a100", "opt-30b"),), batch_sizes=(64,),
        output_lens=(32,))
    assert len(result.rows) == 9


def test_fig12_rows():
    result = fig12_energy.run(models=("opt-30b",), batch_sizes=(1,),
                              output_lens=(32,))
    lia_rows = result.select(framework="lia")
    assert all(row["normalized_to_lia"] == pytest.approx(1.0)
               for row in lia_rows)


def test_fig13_and_tab6_rows():
    fig = fig13_tab6_gnr.run_fig13(output_len=32)
    assert all(row["latency_ratio"] > 0 for row in fig.rows)
    tab = fig13_tab6_gnr.run_table6(
        pairs=(("gnr-a100", "opt-30b"),), output_len=32)
    assert all(row["vs_flexgen"] > 1.0 for row in tab.rows)


def test_fig14_rows():
    result = fig14_multigpu.run(batch_sizes=(1, 900))
    dgx_900 = result.value("per_gpu_tokens_per_s", config="tp8/dgx-a100",
                           batch_size=900)
    assert dgx_900 == OOM


def test_fig15_rows():
    result = fig15_powerinfer.run(batch_sizes=(1, 900))
    assert result.value("latency_s", framework="powerinfer",
                        batch_size=900) == OOM
    assert result.value("latency_s", framework="lia",
                        batch_size=900) != OOM


def test_tab3_rows():
    result = tab3_cxl_offloading.run(output_lens=(32,))
    row = result.rows[0]
    assert row["increased_batch"] > 900
    assert row["tokens_per_s_cxl"] == pytest.approx(
        row["tokens_per_s"], rel=0.02)


def test_tab4_rows():
    result = tab4_ablation.run(batch_sizes=(1,))
    settings = {row["setting"] for row in result.rows}
    assert settings == {"all-optimizations", "no-optimization-1",
                        "no-optimization-2", "flexgen-policy"}


def test_tab5_rows():
    result = tab5_breakdown.run(batch_sizes=(1,),
                                frameworks=("lia", "ipex"))
    ipex = result.select(framework="ipex")[0]
    assert ipex["gpu_s"] == 0.0
    assert ipex["com_s"] == 0.0


def test_sec77_rows():
    result = sec77_generalizability.run(models=("llama2-70b",),
                                        system_names=("spr-a100",))
    assert all(row["vs_flexgen"] > 1.0 for row in result.rows)


def test_sec8_drivers():
    gh = sec8_discussion.run_grace_hopper(batch_sizes=(64,))
    assert gh.rows[0]["gh200_decode_policy"] == "(0, 0, 0, 0, 0, 0)"
    cheap = sec8_discussion.run_cheap_gpu_alternative(batch_sizes=(1,))
    assert cheap.rows[0]["latency_ratio"] > 1.0
    cost = sec8_discussion.run_cxl_cost_saving()
    all_ddr = cost.value("cost_usd", config="all-ddr")
    tiered = cost.value("cost_usd", config="params-in-cxl")
    assert tiered < all_ddr


def test_build_estimator_registry(opt_30b, spr_a100):
    for name in ("lia", "ipex", "flexgen", "data-offload"):
        estimator = build_estimator(name, opt_30b, spr_a100)
        assert estimator.framework_name == name
    with pytest.raises(ConfigurationError, match="unknown framework"):
        build_estimator("vllm", opt_30b, spr_a100)


def test_sec72_rows():
    from repro.experiments import sec72_transfer_reduction

    result = sec72_transfer_reduction.run(models=("opt-30b",),
                                          batch_sizes=(1, 64))
    assert len(result.rows) == 2
    assert all(row["flexgen_mb_per_token"]
               > row["lia_mb_per_token"] for row in result.rows)


def test_ext_quantization_rows():
    from repro.experiments import ext_quantization

    result = ext_quantization.run(model="opt-30b", batch_sizes=(1,))
    row = result.select(batch_size=1)[0]
    assert row["speedup"] > 1.0


def test_ext_multigpu_rows():
    from repro.experiments import ext_multigpu

    result = ext_multigpu.run(gpu_counts=(1, 2), batch_size=256)
    fabrics = {row["fabric"] for row in result.rows}
    assert fabrics == {"nvlink3", "pcie4"}
    assert len(result.rows) == 4


def test_ext_sensitivity_rows():
    from repro.experiments import ext_sensitivity

    result = ext_sensitivity.run(factors=(1.0, 2.0),
                                 system_name="spr-a100")
    dims = {row["dimension"] for row in result.rows}
    assert dims == {"link-bandwidth", "cpu-compute"}


def test_ext_robustness_rows():
    from repro.experiments import ext_robustness

    result = ext_robustness.run(errors=(1.0, 1.3), batch_sizes=(64,))
    assert all(row["penalty"] >= 1.0 - 1e-9 for row in result.rows)


def test_fig_drivers_identical_across_process_counts():
    # The tentpole contract on the paper grids themselves: fig09/10/11
    # rows are bit-identical whether the grid runs serially or over
    # the process pool.
    serial = fig10_online_latency.run(
        pairs=(("spr-a100", "opt-30b"),), output_lens=(32,),
        processes=0)
    pooled = fig10_online_latency.run(
        pairs=(("spr-a100", "opt-30b"),), output_lens=(32,),
        processes=2)
    assert serial.rows == pooled.rows

    serial = fig11_offline_throughput.run(
        pairs=(("spr-a100", "opt-30b"),), batch_sizes=(64,),
        output_lens=(32,), processes=0)
    pooled = fig11_offline_throughput.run(
        pairs=(("spr-a100", "opt-30b"),), batch_sizes=(64,),
        output_lens=(32,), processes=2)
    assert serial.rows == pooled.rows

    serial = fig09_policy_map.run(system_names=("spr-a100",),
                                  batch_sizes=(1, 64),
                                  input_lens=(32, 512), processes=0)
    pooled = fig09_policy_map.run(system_names=("spr-a100",),
                                  batch_sizes=(1, 64),
                                  input_lens=(32, 512), processes=2)
    assert serial.rows == pooled.rows
