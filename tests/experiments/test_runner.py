"""Tests of the deterministic parallel sweep runner."""

import threading

import pytest

from repro.core.config import LiaConfig
from repro.core.optimizer import optimal_policy, policy_map
from repro.errors import ConfigurationError
from repro.experiments.runner import (
    WORKERS_ENV,
    default_workers,
    run_sweep,
)
from repro.hardware.system import get_system
from repro.models.sublayers import Stage
from repro.models.zoo import get_model
from repro.telemetry import Telemetry, activate


class TestDefaultWorkers:
    def test_positive(self):
        assert default_workers() >= 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert default_workers() == 3

    def test_env_zero_passes_through(self, monkeypatch):
        # 0 is the documented explicit-serial mode, not "clamp to 1":
        # run_sweep(workers=0) must run every point on the caller's
        # thread with no pool at all.
        monkeypatch.setenv(WORKERS_ENV, "0")
        assert default_workers() == 0

    def test_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ConfigurationError):
            default_workers()

    def test_env_rejects_negative(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "-2")
        with pytest.raises(ConfigurationError):
            default_workers()


class TestRunSweep:
    def test_preserves_input_order(self):
        points = list(range(64))
        assert run_sweep(lambda x: x * x, points, workers=4) == \
            [x * x for x in points]

    def test_serial_equals_parallel(self):
        points = [(b, length) for b in (1, 8) for length in (32, 128)]

        def fn(point):
            return point[0] * 1000 + point[1]

        assert run_sweep(fn, points, workers=1) == \
            run_sweep(fn, points, workers=4)

    def test_actually_fans_out(self):
        threads = set()
        barrier = threading.Barrier(4, timeout=10)

        def fn(point):
            threads.add(threading.get_ident())
            barrier.wait()
            return point

        run_sweep(fn, list(range(4)), workers=4)
        assert len(threads) == 4

    def test_exceptions_propagate(self):
        def fn(point):
            if point == 2:
                raise ValueError("boom")
            return point

        with pytest.raises(ValueError, match="boom"):
            run_sweep(fn, [0, 1, 2, 3], workers=2)

    def test_negative_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            run_sweep(lambda x: x, [1, 2], workers=-1)

    def test_workers_zero_is_explicit_serial(self):
        # No pool: every point runs on the calling thread, in order.
        calling_thread = threading.get_ident()
        seen = []

        def fn(point):
            seen.append((point, threading.get_ident()))
            return point * 2

        points = list(range(16))
        assert run_sweep(fn, points, workers=0) == \
            [p * 2 for p in points]
        assert [p for p, _ in seen] == points
        assert {tid for _, tid in seen} == {calling_thread}

    def test_env_zero_forces_serial_everywhere(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "0")
        calling_thread = threading.get_ident()
        tids = set()

        def fn(point):
            tids.add(threading.get_ident())
            return point

        assert run_sweep(fn, list(range(8))) == list(range(8))
        assert tids == {calling_thread}

    def test_empty_points(self):
        assert run_sweep(lambda x: x, [], workers=4) == []

    def test_telemetry_propagates_to_workers(self):
        telemetry = Telemetry()

        def fn(point):
            from repro.telemetry.runtime import current
            active = current()
            if active is not None:
                active.metrics.counter("sweep.test").inc()
            return point

        with activate(telemetry):
            run_sweep(fn, list(range(8)), workers=4)
        assert telemetry.metrics.counter_value("sweep.test") == 8


class TestParallelPolicyMap:
    def test_parallel_matches_serial(self):
        spec = get_model("opt-30b")
        system = get_system("spr-a100")
        config = LiaConfig(enforce_host_capacity=False)
        batches = (1, 16)
        lengths = (32, 256)
        serial = policy_map(spec, Stage.DECODE, batches, lengths,
                            system, config, workers=1)
        parallel = policy_map(spec, Stage.DECODE, batches, lengths,
                              system, config, workers=4)
        assert serial == parallel
        expected = {
            (b, length): optimal_policy(spec, Stage.DECODE, b, length,
                                        system, config).policy
            for b in batches for length in lengths}
        assert parallel == expected
