"""Task-graph construction and analysis."""

import pytest

from repro.errors import SimulationError
from repro.sim.task import Task, TaskGraph


def test_add_and_lookup():
    graph = TaskGraph()
    task = graph.add("a", "cpu", 1.0)
    assert graph.get("a") is task
    assert "a" in graph
    assert len(graph) == 1


def test_duplicate_id_rejected():
    graph = TaskGraph()
    graph.add("a", "cpu", 1.0)
    with pytest.raises(SimulationError, match="duplicate"):
        graph.add("a", "gpu", 1.0)


def test_unknown_dependency_rejected():
    graph = TaskGraph()
    with pytest.raises(SimulationError, match="unknown dependency"):
        graph.add("a", "cpu", 1.0, deps=["missing"])


def test_self_dependency_rejected():
    with pytest.raises(SimulationError):
        Task(task_id="a", resource="cpu", duration=1.0, deps=("a",))


def test_negative_duration_rejected():
    with pytest.raises(SimulationError):
        Task(task_id="a", resource="cpu", duration=-1.0)


def test_topological_order_respects_deps():
    graph = TaskGraph()
    graph.add("a", "cpu", 1.0)
    graph.add("b", "cpu", 1.0, deps=["a"])
    graph.add("c", "gpu", 1.0, deps=["a"])
    graph.add("d", "gpu", 1.0, deps=["b", "c"])
    order = [t.task_id for t in graph.topological_order()]
    assert order.index("a") < order.index("b")
    assert order.index("a") < order.index("c")
    assert order.index("d") == 3


def test_critical_path_ignores_resources():
    graph = TaskGraph()
    graph.add("a", "cpu", 2.0)
    graph.add("b", "cpu", 3.0, deps=["a"])
    graph.add("c", "cpu", 1.0)
    assert graph.critical_path_length() == pytest.approx(5.0)


def test_resources_listed():
    graph = TaskGraph()
    graph.add("a", "cpu", 1.0)
    graph.add("b", "pcie", 1.0)
    assert graph.resources() == ["cpu", "pcie"]


def test_get_unknown_task():
    with pytest.raises(SimulationError, match="unknown task"):
        TaskGraph().get("nope")
