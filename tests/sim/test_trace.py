"""Timeline analysis and rendering."""

import pytest

from repro.errors import SimulationError
from repro.sim.trace import TaskRecord, Timeline


def _timeline():
    return Timeline([
        TaskRecord("a", "cpu", "a", 0.0, 2.0),
        TaskRecord("b", "pcie", "b", 0.0, 1.0),
        TaskRecord("c", "cpu", "c", 2.0, 3.0),
    ])


def test_makespan():
    assert _timeline().makespan == 3.0


def test_busy_time_and_utilization():
    timeline = _timeline()
    assert timeline.busy_time("cpu") == pytest.approx(3.0)
    assert timeline.busy_time("pcie") == pytest.approx(1.0)
    assert timeline.utilization("cpu") == pytest.approx(1.0)
    assert timeline.utilization("pcie") == pytest.approx(1.0 / 3.0)


def test_by_resource_grouping():
    grouped = _timeline().by_resource()
    assert sorted(grouped) == ["cpu", "pcie"]
    assert [r.task_id for r in grouped["cpu"]] == ["a", "c"]


def test_record_lookup():
    assert _timeline().record("b").resource == "pcie"
    with pytest.raises(SimulationError):
        _timeline().record("zzz")


def test_empty_timeline():
    empty = Timeline([])
    assert empty.makespan == 0.0
    assert empty.utilization("cpu") == 0.0
    assert empty.render_gantt() == "(empty timeline)"


def test_gantt_rendering_has_rows_per_resource():
    text = _timeline().render_gantt(width=40)
    lines = text.splitlines()
    assert any("cpu" in line for line in lines)
    assert any("pcie" in line for line in lines)
    assert "makespan" in lines[-1]
    assert "#" in text and "." in text


def test_records_sorted_by_start():
    timeline = Timeline([
        TaskRecord("late", "cpu", "late", 5.0, 6.0),
        TaskRecord("early", "cpu", "early", 0.0, 1.0),
    ])
    assert [r.task_id for r in timeline.records] == ["early", "late"]
