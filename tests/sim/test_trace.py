"""Timeline analysis and rendering."""

import pytest

from repro.errors import SimulationError
from repro.sim.trace import TaskRecord, Timeline


def _timeline():
    return Timeline([
        TaskRecord("a", "cpu", "a", 0.0, 2.0),
        TaskRecord("b", "pcie", "b", 0.0, 1.0),
        TaskRecord("c", "cpu", "c", 2.0, 3.0),
    ])


def test_makespan():
    assert _timeline().makespan == 3.0


def test_busy_time_and_utilization():
    timeline = _timeline()
    assert timeline.busy_time("cpu") == pytest.approx(3.0)
    assert timeline.busy_time("pcie") == pytest.approx(1.0)
    assert timeline.utilization("cpu") == pytest.approx(1.0)
    assert timeline.utilization("pcie") == pytest.approx(1.0 / 3.0)


def test_by_resource_grouping():
    grouped = _timeline().by_resource()
    assert sorted(grouped) == ["cpu", "pcie"]
    assert [r.task_id for r in grouped["cpu"]] == ["a", "c"]


def test_record_lookup():
    assert _timeline().record("b").resource == "pcie"
    with pytest.raises(SimulationError):
        _timeline().record("zzz")


def test_empty_timeline():
    empty = Timeline([])
    assert empty.makespan == 0.0
    assert empty.utilization("cpu") == 0.0
    assert empty.render_gantt() == "(empty timeline)"


def test_gantt_rendering_has_rows_per_resource():
    text = _timeline().render_gantt(width=40)
    lines = text.splitlines()
    assert any("cpu" in line for line in lines)
    assert any("pcie" in line for line in lines)
    assert "makespan" in lines[-1]
    assert "#" in text and "." in text


def test_records_sorted_by_start():
    timeline = Timeline([
        TaskRecord("late", "cpu", "late", 5.0, 6.0),
        TaskRecord("early", "cpu", "early", 0.0, 1.0),
    ])
    assert [r.task_id for r in timeline.records] == ["early", "late"]


def test_duplicate_task_ids_rejected():
    with pytest.raises(SimulationError, match="duplicate"):
        Timeline([
            TaskRecord("a", "cpu", "a", 0.0, 1.0),
            TaskRecord("a", "gpu", "a again", 1.0, 2.0),
        ])


def test_record_lookup_scales_constant_time():
    # The task_id index is built once at construction; lookups do not
    # walk the record list.
    many = Timeline([TaskRecord(f"t{i}", "cpu", f"t{i}", float(i),
                                float(i + 1)) for i in range(2000)])
    assert many.record("t1999").start == 1999.0
    assert many.record("t0").finish == 1.0


def test_gantt_sub_pixel_task_still_renders():
    # A task far shorter than one column must still paint one '#'.
    timeline = Timeline([
        TaskRecord("long", "cpu", "long", 0.0, 100.0),
        TaskRecord("blip", "pcie", "blip", 50.0, 50.001),
    ])
    text = timeline.render_gantt(width=40)
    pcie_row = next(line for line in text.splitlines()
                    if "pcie" in line)
    assert pcie_row.count("#") == 1


def test_gantt_task_ending_at_makespan_fills_last_column():
    timeline = Timeline([
        TaskRecord("a", "cpu", "a", 0.0, 4.0),
        TaskRecord("b", "cpu", "b", 4.0, 8.0),
    ])
    for width in (7, 8, 72):
        row = next(line for line in
                   timeline.render_gantt(width=width).splitlines()
                   if "cpu" in line)
        cells = row.split("|")[1]
        assert len(cells) == width
        assert cells[-1] == "#"  # finish == makespan reaches the edge
        assert "." not in cells  # back-to-back tasks leave no hole


def test_to_trace_events_round_trip():
    events = _timeline().to_trace_events()
    complete = [e for e in events if e["ph"] == "X"]
    assert {e["args"]["task_id"] for e in complete} == {"a", "b", "c"}
    assert all(e["dur"] >= 0 for e in complete)
