"""Discrete-event simulator semantics."""

import pytest

from repro.sim.engine import Simulator, simulate
from repro.sim.task import TaskGraph


def test_serialization_on_one_resource():
    graph = TaskGraph()
    graph.add("a", "cpu", 1.0)
    graph.add("b", "cpu", 2.0)
    timeline = simulate(graph)
    assert timeline.makespan == pytest.approx(3.0)


def test_independent_resources_run_in_parallel():
    graph = TaskGraph()
    graph.add("a", "cpu", 2.0)
    graph.add("b", "gpu", 2.0)
    timeline = simulate(graph)
    assert timeline.makespan == pytest.approx(2.0)


def test_dependency_delays_start():
    graph = TaskGraph()
    graph.add("a", "cpu", 1.5)
    graph.add("b", "gpu", 1.0, deps=["a"])
    timeline = simulate(graph)
    record = timeline.record("b")
    assert record.start == pytest.approx(1.5)
    assert timeline.makespan == pytest.approx(2.5)


def test_diamond_dependency():
    graph = TaskGraph()
    graph.add("a", "cpu", 1.0)
    graph.add("b", "gpu", 2.0, deps=["a"])
    graph.add("c", "pcie", 3.0, deps=["a"])
    graph.add("d", "cpu", 1.0, deps=["b", "c"])
    timeline = simulate(graph)
    # d starts when the slower branch (c: 1+3=4) finishes.
    assert timeline.record("d").start == pytest.approx(4.0)
    assert timeline.makespan == pytest.approx(5.0)


def test_pipeline_overlap_shape():
    # Two-stage pipeline over 3 items: transfer then compute.
    # Steady state: makespan = first transfer + 3 computes when
    # compute >= transfer.
    graph = TaskGraph()
    prev = None
    for i in range(3):
        deps = [] if prev is None else [prev]
        graph.add(f"x{i}", "pcie", 1.0, deps=deps)
        graph.add(f"c{i}", "compute", 2.0, deps=[f"x{i}"])
        prev = f"x{i}"
    timeline = simulate(graph)
    assert timeline.makespan == pytest.approx(1.0 + 3 * 2.0)


def test_zero_duration_tasks():
    graph = TaskGraph()
    graph.add("a", "cpu", 0.0)
    graph.add("b", "cpu", 0.0, deps=["a"])
    assert simulate(graph).makespan == 0.0


def test_empty_graph():
    assert simulate(TaskGraph()).makespan == 0.0


def test_simulator_class_equivalent_to_helper():
    graph = TaskGraph()
    graph.add("a", "cpu", 1.0)
    assert Simulator(graph).run().makespan == simulate(graph).makespan


def test_all_tasks_executed_exactly_once():
    graph = TaskGraph()
    for i in range(20):
        deps = [f"t{i-1}"] if i else []
        graph.add(f"t{i}", f"r{i % 3}", 0.5, deps=deps)
    timeline = simulate(graph)
    assert len(timeline) == 20
    assert sorted(r.task_id for r in timeline) == sorted(
        f"t{i}" for i in range(20))
