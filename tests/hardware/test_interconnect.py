"""Interconnect links."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.interconnect import LINK_ZOO, Link, get_link
from repro.models.zoo import get_model


def test_pcie_generations_double():
    assert (get_link("pcie4").bandwidth
            == pytest.approx(2 * get_link("pcie3").bandwidth))
    assert (get_link("pcie5").bandwidth
            == pytest.approx(2 * get_link("pcie4").bandwidth))


def test_opt175b_transfer_time_matches_footnote2():
    # §1 footnote 2: OPT-175B's parameters take ~5 s over PCIe 5.0.
    spec = get_model("opt-175b")
    time = get_link("pcie5").transfer_time(spec.total_param_bytes)
    assert 4.5 <= time <= 7.0


def test_grace_hopper_link_7x_pcie5():
    # §8: 900 GB/s, "7x a x16 PCIe 5.0 link" counting PCIe's
    # bidirectional 128 GB/s; against the unidirectional effective
    # rate the ratio is ~15x.
    c2c = get_link("nvlink-c2c")
    pcie5 = get_link("pcie5")
    assert 6.0 <= c2c.bandwidth / (2 * pcie5.bandwidth) <= 8.5


def test_small_transfers_dominated_by_setup():
    link = get_link("pcie4")
    tiny = link.effective_rate(1024)
    large = link.effective_rate(1e9)
    assert tiny < 0.01 * large


def test_effective_rate_capped_by_source():
    link = get_link("pcie4")
    throttled = link.effective_rate(1e9, source_bandwidth=10e9)
    assert throttled < 10.1e9
    assert throttled == pytest.approx(10e9, rel=0.01)


def test_zero_transfer_is_free():
    assert get_link("pcie4").transfer_time(0) == 0.0


def test_negative_transfer_rejected():
    with pytest.raises(ConfigurationError):
        get_link("pcie4").transfer_time(-1)


def test_link_validation():
    with pytest.raises(ConfigurationError):
        Link("bad", bandwidth=0.0)
    with pytest.raises(ConfigurationError):
        Link("bad", bandwidth=1.0, setup_latency=-1.0)


def test_unknown_link_raises():
    with pytest.raises(ConfigurationError, match="unknown link"):
        get_link("pcie6")


def test_zoo_contains_all_generations():
    for name in ("pcie3", "pcie4", "pcie5", "nvlink3", "nvlink-c2c"):
        assert name in LINK_ZOO
