"""System configurations."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.system import SYSTEM_ZOO, SystemConfig, get_system
from repro.hardware.cpu import get_cpu
from repro.hardware.gpu import get_gpu
from repro.hardware.interconnect import get_link


def test_table2_systems_exist():
    for name in ("spr-a100", "spr-h100", "gnr-a100", "gnr-h100",
                 "gh200", "dgx-a100", "3xv100"):
        assert name in SYSTEM_ZOO


def test_spr_a100_composition():
    system = get_system("spr-a100")
    assert system.cpu.name == "spr"
    assert system.gpu.name == "a100"
    assert system.host_link.name == "pcie4-x16"
    assert system.n_gpus == 1
    assert not system.has_cxl


def test_spr_h100_uses_pcie5():
    assert get_system("spr-h100").host_link.name == "pcie5-x16"


def test_dgx_has_8_gpus_and_nvlink():
    dgx = get_system("dgx-a100")
    assert dgx.n_gpus == 8
    assert dgx.peer_link.name == "nvlink3"
    assert dgx.total_gpu_memory == 8 * 80 * 2**30


def test_with_cxl_attaches_expanders():
    system = get_system("spr-a100").with_cxl(n_expanders=2)
    assert system.has_cxl
    assert system.cxl_pool.bandwidth == pytest.approx(34e9)
    assert system.host_memory_capacity > \
        get_system("spr-a100").host_memory_capacity


def test_cxl_pool_requires_devices():
    with pytest.raises(ConfigurationError, match="no CXL"):
        __ = get_system("spr-a100").cxl_pool


def test_dgx_costs_about_10x_single_gpu_system():
    # §7.8: GNR-A100 is ~10 % the cost of a DGX-A100.
    dgx = get_system("dgx-a100")
    gnr = get_system("gnr-a100")
    assert 3.0 <= dgx.price_usd / gnr.price_usd <= 8.0


def test_tdp_includes_all_components():
    system = get_system("spr-a100")
    assert system.tdp_watts == pytest.approx(
        system.cpu.tdp_watts + system.gpu.tdp_watts
        + system.platform_power_watts)


def test_multi_gpu_needs_peer_link():
    with pytest.raises(ConfigurationError, match="peer link"):
        SystemConfig(name="bad", cpu=get_cpu("spr"),
                     gpus=(get_gpu("a100"), get_gpu("a100")),
                     host_link=get_link("pcie4"))


def test_mixed_gpus_rejected():
    with pytest.raises(ConfigurationError, match="identical"):
        SystemConfig(name="bad", cpu=get_cpu("spr"),
                     gpus=(get_gpu("a100"), get_gpu("h100")),
                     host_link=get_link("pcie4"),
                     peer_link=get_link("nvlink3"))


def test_unknown_system_raises():
    with pytest.raises(ConfigurationError, match="unknown system"):
        get_system("spr-b200")
