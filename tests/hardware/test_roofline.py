"""Roofline compute-time model."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.roofline import (
    BATCHED_GEMV_BANDWIDTH_EFFICIENCY,
    ComputeEngine,
    EfficiencyCurve,
    MatmulKind,
)


@pytest.fixture
def engine():
    return ComputeEngine(
        name="test",
        peak_flops=100e12,
        mem_bandwidth=200e9,
        efficiency=EfficiencyCurve(max_efficiency=0.5, half_flops=1e10),
        dispatch_overhead=1e-6,
    )


def test_efficiency_half_point():
    curve = EfficiencyCurve(max_efficiency=0.4, half_flops=1e9)
    assert curve(1e9) == pytest.approx(0.2)


def test_efficiency_monotone_and_bounded():
    curve = EfficiencyCurve(max_efficiency=0.5, half_flops=1e10)
    values = [curve(f) for f in (1e6, 1e8, 1e10, 1e12, 1e15)]
    assert values == sorted(values)
    assert all(0.0 < v <= 0.5 for v in values)
    assert curve(0.0) == 0.0


def test_efficiency_validation():
    with pytest.raises(ConfigurationError):
        EfficiencyCurve(max_efficiency=0.0, half_flops=1.0)
    with pytest.raises(ConfigurationError):
        EfficiencyCurve(max_efficiency=1.5, half_flops=1.0)
    with pytest.raises(ConfigurationError):
        EfficiencyCurve(max_efficiency=0.5, half_flops=-1.0)


def test_memory_bound_time(engine):
    # ops/byte ~ 0: pure memory time plus overhead.
    time = engine.matmul_time(flops=1.0, bytes_moved=200e9)
    assert time == pytest.approx(1.0 + 1e-6, rel=1e-6)


def test_compute_bound_time(engine):
    # Huge flops, no bytes: time ~ flops / (peak * max_eff).
    time = engine.matmul_time(flops=1e16, bytes_moved=1.0)
    assert time == pytest.approx(1e16 / (100e12 * 0.5), rel=0.02)


def test_roofline_takes_max(engine):
    mem_only = engine.matmul_time(flops=0.0, bytes_moved=2e9)
    both = engine.matmul_time(flops=1e3, bytes_moved=2e9)
    assert both == pytest.approx(mem_only, rel=1e-6)


def test_batched_gemv_bandwidth_penalty(engine):
    gemm = engine.matmul_time(0.0, 1e9, MatmulKind.GEMM)
    gemv = engine.matmul_time(0.0, 1e9, MatmulKind.BATCHED_GEMV)
    expected = ((1e9 / (200e9 * BATCHED_GEMV_BANDWIDTH_EFFICIENCY))
                + 1e-6)
    assert gemv == pytest.approx(expected, rel=1e-9)
    assert gemv > gemm


def test_slow_tier_term(engine):
    fast = engine.matmul_time(0.0, 1e9)
    split = engine.matmul_time(0.0, 0.0, slow_bytes=1e9,
                               slow_bandwidth=20e9)
    # Slow tier at 1/10th bandwidth is 10x slower.
    assert split == pytest.approx((fast - 1e-6) * 10 + 1e-6, rel=1e-6)


def test_slow_tier_capped_by_engine_bandwidth(engine):
    # A "slow" tier faster than the engine's own memory cannot help.
    native = engine.matmul_time(0.0, 1e9)
    via_fast_tier = engine.matmul_time(0.0, 0.0, slow_bytes=1e9,
                                       slow_bandwidth=1e15)
    assert via_fast_tier == pytest.approx(native, rel=1e-9)


def test_zero_work_is_free(engine):
    assert engine.matmul_time(0.0, 0.0) == 0.0
    assert engine.matmul_throughput(0.0, 0.0) == 0.0


def test_negative_inputs_rejected(engine):
    with pytest.raises(ConfigurationError):
        engine.matmul_time(-1.0, 0.0)
    with pytest.raises(ConfigurationError):
        engine.matmul_time(0.0, -1.0)


def test_measured_peak(engine):
    assert engine.measured_peak_flops() == pytest.approx(50e12)


def test_throughput_saturates_at_measured_peak(engine):
    tput = engine.matmul_throughput(1e17, 1e3)
    assert tput <= engine.measured_peak_flops()
    assert tput == pytest.approx(engine.measured_peak_flops(), rel=0.01)
