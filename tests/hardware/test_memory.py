"""Memory devices: DDR, HBM, CXL, and interleaving."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.memory import (
    MemoryDevice,
    MemoryKind,
    cxl_expander,
    ddr_subsystem,
    hbm_stack,
    interleave,
)


def test_ddr_subsystem_bandwidth_formula():
    # 8 x DDR5-4800 = 307.2 GB/s theoretical.
    ddr = ddr_subsystem("test", channels=8, mt_per_s=4800,
                        capacity_gib=512, efficiency=1.0)
    assert ddr.bandwidth == pytest.approx(307.2e9)
    assert ddr.kind is MemoryKind.DDR


def test_cxl_expander_defaults():
    cxl = cxl_expander()
    assert cxl.kind is MemoryKind.CXL
    assert cxl.bandwidth == pytest.approx(17e9)
    assert cxl.capacity_bytes == 128 * 2**30


def test_cxl_latency_penalty_in_paper_range():
    # §2.3: CXL adds 140-170 ns over DDR.
    ddr = ddr_subsystem("d", 8, 4800, 512)
    cxl = cxl_expander()
    extra_ns = (cxl.latency - ddr.latency) * 1e9
    assert 140 <= extra_ns <= 170


def test_interleave_two_expanders():
    # §6 Observation-1: two 17 GB/s expanders give ~34 GB/s.
    pool = interleave([cxl_expander("a"), cxl_expander("b")])
    assert pool.bandwidth == pytest.approx(34e9)
    assert pool.capacity_bytes == 2 * 128 * 2**30
    assert pool.kind is MemoryKind.CXL


def test_interleave_rejects_mixed_kinds():
    with pytest.raises(ConfigurationError, match="mixed memory kinds"):
        interleave([cxl_expander("a"), hbm_stack("h", 40, 1300)])


def test_interleave_rejects_empty():
    with pytest.raises(ConfigurationError):
        interleave([])


def test_transfer_time_includes_latency():
    device = MemoryDevice("m", MemoryKind.DDR, capacity_bytes=1e9,
                          bandwidth=1e9, latency=1e-6)
    assert device.transfer_time(0) == 0.0
    assert device.transfer_time(1e9) == pytest.approx(1.0 + 1e-6)
    with pytest.raises(ConfigurationError):
        device.transfer_time(-1)


def test_cxl_cheaper_per_gb_than_ddr():
    # §8: half-DDR/half-CXL averages $5.60/GB vs $11.25 all-DDR.
    ddr = ddr_subsystem("d", 8, 4800, 512)
    cxl = cxl_expander()
    assert cxl.cost_per_gb < ddr.cost_per_gb / 2
    blended = (ddr.cost_per_gb + cxl.cost_per_gb) / 2
    assert blended == pytest.approx(5.60, abs=1.0)


def test_device_validation():
    with pytest.raises(ConfigurationError):
        MemoryDevice("bad", MemoryKind.DDR, capacity_bytes=0,
                     bandwidth=1e9, latency=0)
    with pytest.raises(ConfigurationError):
        MemoryDevice("bad", MemoryKind.DDR, capacity_bytes=1,
                     bandwidth=0, latency=0)
