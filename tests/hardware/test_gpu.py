"""GPU calibration: the §4 cross-architecture ratios."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.cpu import get_cpu
from repro.hardware.gpu import get_gpu
from repro.hardware.roofline import MatmulKind
from repro.models.zoo import get_model


def _gemm_tput(engine, bl: int) -> float:
    spec = get_model("opt-175b")
    d = spec.d_model
    return engine.matmul_throughput(8.0 * bl * d * d,
                                    2.0 * bl * d + 8.0 * d * d)


def _gemv_tput(engine, batch: int, length: int = 1024) -> float:
    spec = get_model("opt-175b")
    flops = 2.0 * batch * length * spec.d_model
    bytes_moved = (2.0 * batch * spec.d_model
                   + 2.0 * batch * length * spec.d_model)
    return engine.matmul_throughput(flops, bytes_moved,
                                    MatmulKind.BATCHED_GEMV)


def test_gemm_ranking_matches_fig5():
    # §4.1 ranking at large sizes: H100 > A100 > V100 > GNR > SPR >
    # P100 > AVX512.
    engines = {
        "h100": get_gpu("h100").engine,
        "a100": get_gpu("a100").engine,
        "v100": get_gpu("v100").engine,
        "gnr": get_cpu("gnr").engine("amx"),
        "spr": get_cpu("spr").engine("amx"),
        "p100": get_gpu("p100").engine,
        "avx512": get_cpu("spr").engine("avx512"),
    }
    tputs = {name: _gemm_tput(e, 36864) for name, e in engines.items()}
    order = sorted(tputs, key=tputs.get, reverse=True)
    assert order == ["h100", "a100", "v100", "gnr", "spr", "p100",
                     "avx512"]


def test_spr_fraction_of_h100_gemm():
    # §4.1: SPR-AMX reaches 4-11 % of H100 GEMM over the BL range,
    # with the higher fractions at small sizes.
    spr = get_cpu("spr").engine("amx")
    h100 = get_gpu("h100").engine
    small = _gemm_tput(spr, 64) / _gemm_tput(h100, 64)
    large = _gemm_tput(spr, 36864) / _gemm_tput(h100, 36864)
    assert 0.03 <= large <= 0.08
    assert 0.08 <= small <= 0.16
    assert small > large


def test_spr_fraction_of_a100_gemm():
    # §4.1: 7-15 % of A100.
    spr = get_cpu("spr").engine("amx")
    a100 = get_gpu("a100").engine
    large = _gemm_tput(spr, 36864) / _gemm_tput(a100, 36864)
    assert 0.07 <= large <= 0.16


def test_spr_vs_p100_gemm():
    # §4.1: SPR-AMX measured max is ~2.4x P100's.
    spr = get_cpu("spr").engine("amx")
    p100 = get_gpu("p100").engine
    ratio = _gemm_tput(spr, 36864) / _gemm_tput(p100, 36864)
    assert 2.0 <= ratio <= 2.8


def test_gemv_ranking_matches_fig5():
    # §4.2 GEMV ranking: H100 > A100 > V100 > P100 > GNR > SPR ~ AVX.
    engines = {
        "h100": get_gpu("h100").engine,
        "a100": get_gpu("a100").engine,
        "v100": get_gpu("v100").engine,
        "p100": get_gpu("p100").engine,
        "gnr": get_cpu("gnr").engine("amx"),
        "spr": get_cpu("spr").engine("amx"),
    }
    tputs = {name: _gemv_tput(e, 512) for name, e in engines.items()}
    order = sorted(tputs, key=tputs.get, reverse=True)
    assert order == ["h100", "a100", "v100", "p100", "gnr", "spr"]


def test_spr_gemv_fractions_of_gpus():
    # §4.2: SPR reaches ~19 % of A100 and ~15 % of H100 GEMV at large
    # sizes (the relative-memory-bandwidth ratios).
    spr = _gemv_tput(get_cpu("spr").engine("amx"), 512)
    a100 = _gemv_tput(get_gpu("a100").engine, 512)
    h100 = _gemv_tput(get_gpu("h100").engine, 512)
    assert spr / a100 == pytest.approx(0.20, abs=0.04)
    assert spr / h100 == pytest.approx(0.15, abs=0.04)


def test_spr_gemv_closes_gap_at_small_sizes():
    # §4.2: at small sizes SPR reaches ~35-38 % of H100/A100 because
    # of GPU kernel-invocation overhead.
    spr_small = _gemv_tput(get_cpu("spr").engine("amx"), 1, 64)
    h100_small = _gemv_tput(get_gpu("h100").engine, 1, 64)
    spr_large = _gemv_tput(get_cpu("spr").engine("amx"), 512)
    h100_large = _gemv_tput(get_gpu("h100").engine, 512)
    assert spr_small / h100_small > spr_large / h100_large


def test_hbm_capacities_match_table2():
    assert get_gpu("a100").memory_capacity == 40 * 2**30
    assert get_gpu("h100").memory_capacity == 80 * 2**30


def test_avx_matches_amx_on_gemv():
    # §4.2: AVX512 and AMX GEMV differ by < 10 % (both memory-bound).
    spr = get_cpu("spr")
    amx = _gemv_tput(spr.engine("amx"), 512)
    avx = _gemv_tput(spr.engine("avx512"), 512)
    assert abs(amx - avx) / amx < 0.10


def test_unknown_gpu_raises():
    with pytest.raises(ConfigurationError, match="unknown GPU"):
        get_gpu("b100")
