"""CPU calibration against the paper's measured numbers (§4)."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.cpu import (
    AMX_FLOPS_PER_CYCLE,
    AVX512_FLOPS_PER_CYCLE,
    get_cpu,
)
from repro.hardware.roofline import MatmulKind


def test_amx_is_8x_avx_per_cycle():
    # §4.1: AMX's theoretical throughput is 8x AVX512's.
    assert AMX_FLOPS_PER_CYCLE == 8 * AVX512_FLOPS_PER_CYCLE


def test_spr_amx_theoretical_peak():
    # §4.1: 90.1 TFLOPS on the 40-core SPR.
    spr = get_cpu("spr")
    assert spr.engine("amx").peak_flops / 1e12 == pytest.approx(90.1,
                                                                rel=0.01)


def test_spr_amx_measured_peak_near_20_tflops():
    spr = get_cpu("spr")
    measured = spr.engine("amx").measured_peak_flops() / 1e12
    assert 18 <= measured <= 22


def test_gnr_amx_measured_peak_near_40_tflops():
    gnr = get_cpu("gnr")
    measured = gnr.engine("amx").measured_peak_flops() / 1e12
    assert 36 <= measured <= 46


def test_amx_over_avx_measured_ratio():
    # §4.1: measured max ~4.5x over the evaluated range.
    spr = get_cpu("spr")
    ratio = (spr.engine("amx").measured_peak_flops()
             / spr.engine("avx512").measured_peak_flops())
    assert 4.0 <= ratio <= 5.0


def test_spr_memory_bandwidth():
    # §4.2: 260 GB/s on the 8-channel DDR5-4800 system.
    spr = get_cpu("spr")
    assert spr.memory.bandwidth / 1e9 == pytest.approx(260, rel=0.02)


def test_spr_gemv_peak_199_gflops():
    # §4.2: SPR GEMV peaks at 199 GFLOPS (ops/byte = 1 workload).
    spr = get_cpu("spr")
    amx = spr.engine("amx")
    flops = 1e9
    tput = amx.matmul_throughput(flops, flops,
                                 MatmulKind.BATCHED_GEMV)
    assert tput / 1e9 == pytest.approx(199, rel=0.03)


def test_gnr_gemv_70_percent_over_spr():
    # §4.2: GNR improves GEMV throughput by ~70 % via 12 channels of
    # DDR5-5600.
    spr = get_cpu("spr").engine("amx")
    gnr = get_cpu("gnr").engine("amx")
    flops = 1e9
    ratio = (gnr.matmul_throughput(flops, flops, MatmulKind.BATCHED_GEMV)
             / spr.matmul_throughput(flops, flops,
                                     MatmulKind.BATCHED_GEMV))
    assert 1.5 <= ratio <= 1.9


def test_two_socket_gnr_scales_gemm():
    # §4.1: a 2-socket GNR yields ~1.8x more GEMM throughput.
    one = get_cpu("gnr").engine("amx").measured_peak_flops()
    two = get_cpu("gnr-2s").engine("amx").measured_peak_flops()
    assert 1.6 <= two / one <= 2.0


def test_grace_cpu_matches_section8():
    # §8 footnote: Grace peaks at 6.91 TFLOPS; its cores stream LPDDR
    # at ~435 GB/s while the C2C fabric moves 900 GB/s to the GPU.
    grace = get_cpu("grace")
    assert grace.engine("sve2").peak_flops / 1e12 == pytest.approx(6.91)
    assert grace.engine("sve2").mem_bandwidth / 1e9 == pytest.approx(
        512 * 0.85, rel=0.01)
    assert grace.memory.bandwidth / 1e9 == pytest.approx(900, rel=0.01)


def test_best_engine_is_amx():
    assert get_cpu("spr").best_engine.name == "spr-amx"


def test_unknown_engine_raises():
    with pytest.raises(ConfigurationError, match="no engine"):
        get_cpu("spr").engine("amx2")


def test_unknown_cpu_raises():
    with pytest.raises(ConfigurationError, match="unknown CPU"):
        get_cpu("epyc")
