"""Cost models (Fig. 14, §8)."""

import pytest

from repro.core.estimator import LiaEstimator
from repro.energy.cost import (
    CostModel,
    cost_per_million_tokens,
    memory_system_cost,
    tokens_per_second_per_watt,
)
from repro.errors import ConfigurationError
from repro.hardware.system import get_system
from repro.models.workload import InferenceRequest
from repro.models.zoo import get_model


def test_capital_amortization(gnr_a100):
    model = CostModel(gnr_a100)
    assert model.capital_usd_per_hour == pytest.approx(
        gnr_a100.price_usd / (3 * 24 * 365))


def test_power_cost():
    model = CostModel(get_system("gnr-a100"))
    # 1 kW for an hour at $0.10/kWh.
    assert model.power_usd_per_hour(1000.0) == pytest.approx(0.10)
    with pytest.raises(ConfigurationError):
        model.power_usd_per_hour(-1.0)


def test_cost_per_mtoken_scales_inverse_throughput(opt_30b, gnr_a100,
                                                   eval_config):
    estimator = LiaEstimator(opt_30b, gnr_a100, eval_config)
    slow = estimator.estimate(InferenceRequest(1, 256, 32))
    fast = estimator.estimate(InferenceRequest(64, 256, 32))
    assert (cost_per_million_tokens(gnr_a100, fast)
            < cost_per_million_tokens(gnr_a100, slow))


def test_section8_memory_cost_saving():
    # §8: OPT-175B's memory bill drops from ~$6,300 to ~$3,200 when
    # ~43 % of the working set moves to CXL.
    total = 560e9  # working-set bytes
    all_ddr = memory_system_cost(total)
    tiered = memory_system_cost(total * 0.57, total * 0.43)
    assert all_ddr == pytest.approx(6300, rel=0.05)
    assert 2800 <= tiered <= 3900
    assert tiered < all_ddr * 0.65


def test_memory_cost_validation():
    with pytest.raises(ConfigurationError):
        memory_system_cost(-1.0)


def test_tokens_per_watt(opt_30b, gnr_a100, eval_config):
    estimate = LiaEstimator(opt_30b, gnr_a100, eval_config).estimate(
        InferenceRequest(64, 256, 32))
    per_watt = tokens_per_second_per_watt(gnr_a100, estimate)
    assert per_watt == pytest.approx(estimate.throughput
                                     / gnr_a100.tdp_watts)


def test_gnr_a100_cheaper_than_dgx_per_token_at_b1(opt_30b, eval_config):
    # Fig. 14's cost direction at B=1 (using LIA on both scales as a
    # smoke check of the cost plumbing).
    gnr = get_system("gnr-a100")
    spec = get_model("opt-175b")
    request = InferenceRequest(1, 256, 32)
    lia = LiaEstimator(spec, gnr, eval_config).estimate(request)
    cost = cost_per_million_tokens(gnr, lia)
    assert cost > 0.0
