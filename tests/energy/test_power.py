"""Power and energy model (Fig. 12)."""

import pytest

from repro.baselines.flexgen import FlexGenEstimator
from repro.baselines.ipex import IpexEstimator
from repro.core.estimator import LiaEstimator
from repro.energy.power import EnergyReport, PowerModel, energy_per_token
from repro.errors import ConfigurationError
from repro.models.workload import InferenceRequest


def test_average_power_between_idle_and_tdp(opt_30b, spr_a100,
                                            eval_config):
    estimate = LiaEstimator(opt_30b, spr_a100, eval_config).estimate(
        InferenceRequest(1, 256, 32))
    power = PowerModel(spr_a100).average_power(estimate)
    idle = (spr_a100.platform_power_watts
            + 0.35 * (spr_a100.cpu.tdp_watts + spr_a100.gpu.tdp_watts))
    assert idle <= power <= spr_a100.tdp_watts


def test_energy_report_arithmetic():
    report = EnergyReport(average_power_watts=500.0, latency_seconds=10.0,
                          tokens=100)
    assert report.total_energy_joules == 5000.0
    assert report.energy_per_token_joules == 50.0


def test_zero_tokens_rejected():
    report = EnergyReport(500.0, 10.0, 0)
    with pytest.raises(ConfigurationError):
        __ = report.energy_per_token_joules


def test_invalid_idle_fraction(spr_a100):
    with pytest.raises(ConfigurationError):
        PowerModel(spr_a100, idle_fraction=1.5)


def test_lia_more_efficient_than_ipex(opt_30b, spr_a100, eval_config):
    # Fig. 12: LIA is 1.1-5.8x more energy-efficient than IPEX.
    request = InferenceRequest(64, 2016, 32)
    lia = LiaEstimator(opt_30b, spr_a100, eval_config).estimate(request)
    ipex = IpexEstimator(opt_30b, spr_a100, eval_config).estimate(request)
    ratio = (energy_per_token(spr_a100, ipex)
             / energy_per_token(spr_a100, lia))
    assert 1.05 <= ratio <= 8.0


def test_lia_more_efficient_than_flexgen(opt_30b, spr_a100,
                                         eval_config):
    # Fig. 12: 1.6-10.3x over FlexGen, largest at small B.
    request = InferenceRequest(1, 32, 32)
    lia = LiaEstimator(opt_30b, spr_a100, eval_config).estimate(request)
    flexgen = FlexGenEstimator(opt_30b, spr_a100,
                               eval_config).estimate(request)
    ratio = (energy_per_token(spr_a100, flexgen)
             / energy_per_token(spr_a100, lia))
    assert ratio >= 1.6


def test_flexgen_gap_narrows_at_b900(opt_30b, spr_a100, eval_config):
    def gap(batch):
        request = InferenceRequest(batch, 32, 32)
        lia = LiaEstimator(opt_30b, spr_a100, eval_config).estimate(
            request)
        flexgen = FlexGenEstimator(opt_30b, spr_a100,
                                   eval_config).estimate(request)
        return (energy_per_token(spr_a100, flexgen)
                / energy_per_token(spr_a100, lia))

    assert gap(900) < gap(1)
