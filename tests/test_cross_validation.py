"""Cross-validation: the functional engine's *logged* PCIe traffic
equals the analytic latency model's *charged* bytes, per layer, for
arbitrary policies.

This is the strongest glue in the reproduction: the performance
results rest on Eq. (4)-(9)'s transfer terms, and here a real
execution (numpy tensors moving between simulated devices) produces
byte-for-byte the same traffic for every policy hypothesis throws at
it.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import LiaConfig
from repro.core.latency import layer_latency
from repro.core.policy import OffloadPolicy
from repro.hardware.system import get_system
from repro.inference.engine import CooperativeEngine
from repro.inference.transformer import TinyTransformer
from repro.models.sublayers import Stage
from repro.models.zoo import get_model

BATCH, PROMPT_LEN = 2, 6


def _engine_layer_bytes(log, layer_index: int) -> int:
    """All logged PCIe bytes attributable to one decoder layer."""
    total = 0
    for record in log.records:
        label = record.label
        if (f":L{layer_index}:" in label
                or label.endswith(f":L{layer_index}")):
            total += record.num_bytes
    return total


def _run_decode_step(policy: OffloadPolicy):
    """One prefill + one decode step; returns per-layer decode bytes
    for the middle layer (index 1 of 2 — steady-state boundary
    conditions)."""
    spec = get_model("opt-tiny")
    model = TinyTransformer(spec, seed=0)
    engine = CooperativeEngine(model, prefill_policy=policy,
                               decode_policy=policy)
    prompt = np.arange(BATCH * PROMPT_LEN,
                       dtype=np.int64).reshape(BATCH, PROMPT_LEN) % 64
    engine.generate(prompt, 1)  # prefill + the first sampled token
    before = _engine_layer_bytes(engine.log, 1)
    # Run exactly one more decode step and isolate its traffic.
    engine._forward(np.zeros((BATCH, 1), dtype=np.int64), policy,
                    causal=True)
    after = _engine_layer_bytes(engine.log, 1)
    return after - before


@settings(max_examples=24, deadline=None)
@given(bits=st.tuples(*([st.integers(0, 1)] * 6)))
def test_decode_traffic_matches_analytic_bytes(bits):
    policy = OffloadPolicy(bits)
    engine_bytes = _run_decode_step(policy)

    spec = get_model("opt-tiny")
    system = get_system("spr-a100")
    # The engine's cache holds prompt + 1 generated token when the
    # measured decode step runs.
    context_len = PROMPT_LEN + 1
    layer = layer_latency(spec, Stage.DECODE, policy, BATCH,
                          context_len, system, LiaConfig())
    assert engine_bytes == pytest.approx(layer.transfer_bytes)


def test_prefill_traffic_matches_analytic_bytes():
    spec = get_model("opt-tiny")
    system = get_system("spr-a100")
    for text in ("000000", "111111", "011000", "100110"):
        policy = OffloadPolicy.from_string(text)
        model = TinyTransformer(spec, seed=0)
        engine = CooperativeEngine(model, prefill_policy=policy,
                                   decode_policy=policy)
        prompt = np.arange(BATCH * PROMPT_LEN,
                           dtype=np.int64).reshape(BATCH,
                                                   PROMPT_LEN) % 64
        engine._forward(prompt, policy, causal=True)  # prefill only
        engine_bytes = _engine_layer_bytes(engine.log, 1)
        layer = layer_latency(spec, Stage.PREFILL, policy, BATCH,
                              PROMPT_LEN, system, LiaConfig())
        assert engine_bytes == pytest.approx(layer.transfer_bytes), text
