"""Unit-conversion helpers."""

import pytest

from repro import units


def test_bandwidth_conversion():
    assert units.gb_per_s(64) == 64e9


def test_capacity_conversions():
    assert units.gib(1) == 2**30
    assert units.mb(300) == 300e6


def test_throughput_conversions():
    assert units.tflops(90.1) == 90.1e12
    assert units.gflops(199) == 199e9
    assert units.to_tflops(20e12) == 20.0
    assert units.to_gflops(199e9) == 199.0


def test_time_conversions():
    assert units.ns(150) == pytest.approx(150e-9)
    assert units.us(8) == pytest.approx(8e-6)
    assert units.ms(1.2) == pytest.approx(0.0012)


def test_reporting_conversions():
    assert units.to_gib(2**31) == 2.0
    assert units.to_gb(3e9) == 3.0


def test_data_format_sizes():
    assert units.BYTES_PER_BF16 == 2
    assert units.BYTES_PER_FP16 == 2
    assert units.BYTES_PER_FP32 == 4
    assert units.BYTES_PER_INT8 == 1


def test_calendar_constants():
    assert units.SECONDS_PER_HOUR == 3600.0
    assert units.HOURS_PER_YEAR == 24 * 365
