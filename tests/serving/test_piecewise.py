"""Piecewise-Lindley degraded engine: bit-identity with the loop.

The contract under test is the one the module docstring of
:mod:`repro.serving.piecewise` states: on identical inputs the
piecewise engine and the reference loop produce bit-identical
timelines, drop records, :class:`FaultStats`, and telemetry rows —
across every built-in preset, across fault-window boundary edge
cases, and through the multi-replica dispatcher.  Alongside ride the
slow-path regression pins: the admission probe's depth counting and
backoff accounting, pooled (not averaged) fleet percentiles, and the
``run(vectorized=..., streaming=...)`` dispatch rules.
"""

import math
import random
from bisect import bisect_right

import numpy as np
import pytest

from repro.core.estimator import LiaEstimator
from repro.errors import ConfigurationError
from repro.faults.scenarios import builtin_scenarios, get_scenario
from repro.faults.spec import (AdmissionPolicy, FaultEvent, FaultKind,
                               FaultScenario, RetryPolicy)
from repro.models.workload import InferenceRequest
from repro.serving import (DegradedScaleOutReport, DegradedServingReport,
                           MultiReplicaSimulator, ServingSimulator,
                           VectorizedDegradedReport, WorkloadVector,
                           arrivals_poisson, lindley_timeline,
                           run_degraded, run_degraded_vectorized)
from repro.serving.degradation import DegradationController
from repro.serving.piecewise import _apply_stall_ops, _stall_outcome
from repro.telemetry.runtime import Telemetry, activate
from repro.telemetry.timeseries import (fleet_timeseries,
                                        timeseries_from_report)

SHAPES = [InferenceRequest(8, 512, 64), InferenceRequest(4, 256, 32),
          InferenceRequest(1, 128, 16)]


@pytest.fixture
def simulator(opt_30b, spr_a100, eval_config):
    return ServingSimulator(LiaEstimator(opt_30b, spr_a100, eval_config))


def _fresh(simulator):
    return ServingSimulator(simulator.estimator)


def _workload(n, seed=0):
    return WorkloadVector.sample_mix(SHAPES, n, seed=seed)


def _run_both(simulator, workload, arrivals, scenario):
    loop = run_degraded(_fresh(simulator), workload.to_requests(),
                        arrivals, scenario)
    vec = run_degraded_vectorized(_fresh(simulator), workload,
                                  arrivals, scenario)
    return loop, vec


def _assert_parity(loop, vec):
    """Every bit-comparable surface of the two reports."""
    assert isinstance(loop, DegradedServingReport)
    assert isinstance(vec, VectorizedDegradedReport)
    assert vec.arrivals.tolist() == [r.arrival for r in loop.served]
    assert vec.starts.tolist() == [r.start for r in loop.served]
    assert vec.finishes.tolist() == [r.finish for r in loop.served]
    assert vec.served_index.tolist() == list(loop.served_index)
    assert vec.dropped_index.tolist() == list(loop.dropped_index)
    assert [d.arrival for d in vec.dropped] == \
        [d.arrival for d in loop.dropped]
    assert [d.reason for d in vec.dropped] == \
        [d.reason for d in loop.dropped]
    assert [d.request for d in vec.dropped] == \
        [d.request for d in loop.dropped]
    assert vec.stats.as_dict() == loop.stats.as_dict()
    assert vec.n_offered == loop.n_offered
    assert vec.drop_rate == loop.drop_rate
    assert vec.makespan == loop.makespan
    assert vec.mean_queue_delay == loop.mean_queue_delay
    if loop.served:
        assert vec.utilization == loop.utilization
        for fraction in (0.25, 0.5, 0.95, 0.99, 1.0):
            assert vec.latency_percentile(fraction) == \
                loop.latency_percentile(fraction)


# ----------------------------------------------------------------------
# Tentpole: every built-in preset is bit-identical across engines
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(builtin_scenarios()))
def test_presets_bit_identical(simulator, name):
    scenario = get_scenario(name)
    workload = _workload(300, seed=3)
    arrivals = arrivals_poisson(300, 2.0, seed=3)
    loop, vec = _run_both(simulator, workload, arrivals, scenario)
    _assert_parity(loop, vec)


def _telemetry_rows(telemetry):
    return [row for row in telemetry.metrics.snapshot()
            if str(row["metric"]).startswith(("serving.", "faults."))]


def _span_set(telemetry):
    return sorted((s.name, s.track, s.start, s.finish,
                   tuple(sorted(s.args.items())))
                  for s in telemetry.tracer.spans)


@pytest.mark.parametrize("name", ["pcie-flaky", "gpu-pressure",
                                  "noisy-neighbor"])
def test_preset_telemetry_rows_and_spans_engine_invariant(simulator, name):
    scenario = get_scenario(name)
    workload = _workload(120, seed=5)
    arrivals = arrivals_poisson(120, 2.0, seed=5)
    t_loop, t_vec = Telemetry(), Telemetry()
    with activate(t_loop):
        run_degraded(_fresh(simulator), workload.to_requests(),
                     arrivals, scenario)
    with activate(t_vec):
        run_degraded_vectorized(_fresh(simulator), workload, arrivals,
                                scenario)
    assert _telemetry_rows(t_loop) == _telemetry_rows(t_vec)
    assert _span_set(t_loop) == _span_set(t_vec)


# ----------------------------------------------------------------------
# Segment-boundary carry-over property tests
# ----------------------------------------------------------------------
def test_window_edges_exactly_on_arrivals(simulator):
    """Fault windows opening and closing exactly on arrival
    timestamps — the half-open [start, end) boundary must cut the
    same requests in both engines."""
    arrivals = [0.5 * i for i in range(80)]
    workload = _workload(80, seed=7)
    scenario = FaultScenario(
        name="edge-on-arrival", seed=7,
        events=(
            # Opens exactly at arrivals[20], closes exactly at
            # arrivals[40].
            FaultEvent(FaultKind.PCIE_DOWNSHIFT, start=arrivals[20],
                       duration=arrivals[40] - arrivals[20],
                       magnitude=0.4),
            # A stall window that closes exactly where the next
            # performance window opens.
            FaultEvent(FaultKind.PCIE_STALL, start=arrivals[10],
                       duration=arrivals[20] - arrivals[10],
                       magnitude=0.3),
            FaultEvent(FaultKind.GPU_HBM_PRESSURE, start=arrivals[50],
                       duration=arrivals[60] - arrivals[50],
                       magnitude=0.3),
        ),
        chunks_per_request=6)
    loop, vec = _run_both(simulator, workload, arrivals, scenario)
    _assert_parity(loop, vec)


def test_near_zero_windows_bit_identical(simulator):
    """1e-9-second windows: at most one request can start inside,
    and both engines must agree on whether one does."""
    arrivals = [0.25 * i for i in range(60)]
    workload = _workload(60, seed=11)
    scenario = FaultScenario(
        name="near-zero", seed=11,
        events=(
            FaultEvent(FaultKind.CXL_CONTENTION, start=arrivals[15],
                       duration=1e-9, magnitude=0.5),
            FaultEvent(FaultKind.PCIE_STALL, start=arrivals[30],
                       duration=1e-9, magnitude=1.0),
            FaultEvent(FaultKind.PCIE_DOWNSHIFT, start=7.123456,
                       duration=1e-9, magnitude=0.25),
        ),
        chunks_per_request=4)
    loop, vec = _run_both(simulator, workload, arrivals, scenario)
    _assert_parity(loop, vec)


def test_zero_length_windows_are_unconstructible():
    """Zero- and negative-duration windows fail at construction, so
    neither engine can ever see a degenerate segment."""
    for duration in (0.0, -1.0):
        with pytest.raises(ConfigurationError):
            FaultEvent(FaultKind.PCIE_DOWNSHIFT, start=1.0,
                       duration=duration, magnitude=0.5)


def _fuzz_scenario(seed):
    """Random overlapping windows from several fault kinds."""
    rng = random.Random(seed)
    events = []
    for kind in (FaultKind.PCIE_DOWNSHIFT, FaultKind.GPU_HBM_PRESSURE,
                 FaultKind.CXL_CONTENTION):
        for __ in range(rng.randint(1, 2)):
            start = rng.uniform(0.0, 25.0)
            duration = rng.uniform(0.5, 20.0)
            if kind is FaultKind.GPU_HBM_PRESSURE:
                magnitude = rng.uniform(0.1, 0.5)
            else:
                magnitude = rng.uniform(0.3, 0.9)
            events.append(FaultEvent(kind, start=start,
                                     duration=duration,
                                     magnitude=magnitude))
    events.append(FaultEvent(FaultKind.PCIE_STALL,
                             start=rng.uniform(0.0, 15.0),
                             duration=rng.uniform(1.0, 20.0),
                             magnitude=rng.uniform(0.02, 0.15)))
    return FaultScenario(name=f"fuzz-{seed}", seed=seed,
                         events=tuple(events), chunks_per_request=6)


@pytest.mark.parametrize("seed", range(6))
def test_overlapping_windows_fuzz_bit_identity(simulator, seed):
    """Randomized overlapping windows of mixed kinds: the regime
    segmentation (cuts at every event start/end) must replay the
    loop's per-request signature probing exactly, including backlog
    carried across each segment boundary."""
    rng = random.Random(1000 + seed)
    n = 120
    arrivals = sorted(rng.uniform(0.0, 40.0) for __ in range(n))
    workload = _workload(n, seed=seed)
    scenario = _fuzz_scenario(seed)
    loop, vec = _run_both(simulator, workload, arrivals, scenario)
    _assert_parity(loop, vec)


def test_backlog_carries_across_boundary(simulator):
    """A burst arriving inside a window must push starts past the
    window's end; requests starting after the edge get the healthy
    plan even though they arrived during the fault."""
    arrivals = [0.0] * 30 + [100.0 + i for i in range(5)]
    workload = WorkloadVector.from_requests(
        [InferenceRequest(8, 512, 64)] * 35)
    base_latency = _fresh(simulator).estimator.estimate(
        InferenceRequest(8, 512, 64)).latency
    scenario = FaultScenario(
        name="carry-over", seed=2,
        events=(FaultEvent(FaultKind.PCIE_DOWNSHIFT, start=0.0,
                           duration=base_latency * 3.0,
                           magnitude=0.25),))
    loop, vec = _run_both(simulator, workload, arrivals, scenario)
    _assert_parity(loop, vec)
    # The window outlives fewer than all 30 burst requests, so some
    # started degraded and some healthy: both plans were exercised.
    assert vec.stats.policy_resolves > 0
    assert vec.stats.policy_resolves < 30


# ----------------------------------------------------------------------
# The Lindley kernel itself (penalties + free_at carry-in)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(4))
def test_lindley_kernel_matches_scalar_fold(seed):
    rng = random.Random(seed)
    n = 200
    arrivals = np.cumsum([rng.uniform(0.0, 0.3) for __ in range(n)])
    services = np.array([rng.uniform(0.01, 0.4) for __ in range(n)])
    penalties = np.array([0.0 if rng.random() < 0.5
                          else rng.uniform(0.0, 0.2) for __ in range(n)])
    free_at = rng.uniform(0.0, 2.0)
    starts, finishes = lindley_timeline(arrivals, services,
                                        penalties=penalties,
                                        free_at=free_at)
    clock = free_at
    for i in range(n):
        start = arrivals[i] if arrivals[i] >= clock else clock
        # The loop's exact two-addition order:
        finish = (start + services[i]) + penalties[i]
        assert starts[i] == start
        assert finishes[i] == finish
        clock = finish


# ----------------------------------------------------------------------
# Stall-outcome replication (transfer_penalty == _stall_outcome)
# ----------------------------------------------------------------------
def test_stall_outcome_replays_transfer_penalty(simulator):
    scenario = FaultScenario(
        name="always-stall", seed=13,
        events=(FaultEvent(FaultKind.PCIE_STALL, magnitude=0.3),),
        retry=RetryPolicy(max_retries=2, timeout_s=0.05,
                          backoff_base_s=0.01),
        chunks_per_request=5)
    live = DegradationController(_fresh(simulator), scenario)
    shadow = DegradationController(_fresh(simulator), scenario)
    hit = False
    for index in range(40):
        penalty = live.transfer_penalty(2.0, index, 5)
        expected, ops = _stall_outcome(scenario, 0.3, index, 5)
        assert penalty == expected
        if ops:
            hit = True
            _apply_stall_ops(shadow, index, 2.0, ops)
    assert hit  # p=0.3 over 200 chunk draws: stalls certainly occurred
    assert shadow.stats.as_dict() == live.stats.as_dict()


def test_stall_outcome_trivial_cases():
    scenario = FaultScenario(name="s", seed=0)
    assert _stall_outcome(scenario, 0.0, 5, 8) == (0.0, ())
    assert _stall_outcome(scenario, 0.5, 5, 0) == (0.0, ())


# ----------------------------------------------------------------------
# Satellite 1: admission-probe regression pins
# ----------------------------------------------------------------------
def _admission_controller(simulator, max_queue_depth,
                          max_deferrals=3):
    scenario = FaultScenario(
        name="adm", seed=5,
        admission=AdmissionPolicy(max_queue_depth=max_queue_depth,
                                  max_deferrals=max_deferrals))
    return DegradationController(_fresh(simulator), scenario)


def test_admission_depth_ignores_finished_requests(simulator):
    controller = _admission_controller(simulator, max_queue_depth=1)
    # Three admitted requests, all finished before this arrival:
    # depth 0, admitted immediately, no deferral.
    assert controller.admit(5.0, 0, [1.0, 2.0, 3.0]) == 5.0
    assert controller.stats.deferred == 0
    assert controller.stats.backoff_seconds == 0.0


def test_admission_finish_exactly_at_probe_counts_as_done(simulator):
    # The probe counts strictly-later finishes (f > effective); a
    # request finishing exactly at the arrival has left the queue.
    controller = _admission_controller(simulator, max_queue_depth=1)
    assert controller.admit(5.0, 0, [5.0]) == 5.0
    assert controller.stats.deferred == 0


def test_admission_deferral_admits_when_queue_drains(simulator):
    # Depth 1 at arrival, but the pending request finishes during the
    # first backoff: exactly one deferral, then admitted.
    controller = _admission_controller(simulator, max_queue_depth=1)
    effective = controller.admit(5.0, 0, [5.005])
    assert effective == 5.0 + 0.01
    assert controller.stats.deferred == 1
    assert controller.stats.dropped == 0
    assert controller.stats.backoff_seconds == 0.01


def test_admission_shed_charges_exactly_max_deferrals_backoffs(simulator):
    """The final probe that ends in a shed adds no extra backoff:
    ``backoff_seconds`` counts exactly ``max_deferrals`` delays."""
    controller = _admission_controller(simulator, max_queue_depth=1)
    assert controller.admit(5.0, 0, [100.0]) is None
    assert controller.stats.deferred == 3
    assert controller.stats.dropped == 1
    # The exact left-to-right fold of the three backoff delays.
    expected = 0.0
    for attempt in range(3):
        expected += 0.01 * 2.0 ** attempt
    assert controller.stats.backoff_seconds == expected


def test_shed_requests_never_inflate_later_probes(simulator):
    """Shed requests never enter the finish list, so queue depth
    counts only admitted-unfinished work: with depth bound 1 and a
    server busy far beyond every backoff horizon, exactly one request
    is served and each of the others sheds after 3 deferrals."""
    n = 12
    requests = [InferenceRequest(8, 512, 64)] * n
    arrivals = [0.0] * n
    scenario = FaultScenario(
        name="front-door", seed=9,
        admission=AdmissionPolicy(max_queue_depth=1, max_deferrals=3))
    loop = run_degraded(_fresh(simulator), requests, arrivals, scenario)
    assert len(loop.served) == 1
    assert len(loop.dropped) == n - 1
    assert loop.stats.deferred == 3 * (n - 1)
    expected = 0.0
    for __ in range(n - 1):
        for attempt in range(3):
            expected += 0.01 * 2.0 ** attempt
    assert loop.stats.backoff_seconds == expected
    # And the admission-bounded piecewise engine reproduces it bit
    # for bit.
    vec = run_degraded_vectorized(
        _fresh(simulator), WorkloadVector.from_requests(requests),
        arrivals, scenario)
    _assert_parity(loop, vec)


@pytest.mark.parametrize("seed", range(5))
def test_depth_probe_bisect_matches_linear_scan(seed):
    """The binary-search depth count equals the loop's original
    linear scan for any nondecreasing finish list."""
    rng = random.Random(seed)
    finishes = sorted(round(rng.uniform(0.0, 10.0), 3)
                      for __ in range(60))
    for __ in range(200):
        effective = round(rng.uniform(-1.0, 11.0), 3)
        fast = len(finishes) - bisect_right(finishes, effective)
        slow = sum(1 for f in finishes if f > effective)
        assert fast == slow


# ----------------------------------------------------------------------
# Satellite: batched admission probes vs the sequential reference
# ----------------------------------------------------------------------
def _run_admission_kernel(simulator, kernel, workload, arrivals,
                          scenario, idx=None, telemetry=None):
    from repro.serving.piecewise import _warm_base_plans
    from repro.serving.simulator import validate_arrivals

    controller = DegradationController(_fresh(simulator), scenario,
                                       telemetry)
    _warm_base_plans(controller, workload)
    trace = validate_arrivals(arrivals)
    out = kernel(controller, workload, trace,
                 None if idx is None
                 else np.asarray(idx, dtype=np.int64))
    return out, controller.stats.as_dict()


def _assert_kernels_identical(simulator, workload, arrivals, scenario,
                              idx=None, with_telemetry=False):
    from repro.serving.piecewise import (_run_admission_piecewise,
                                         _run_admission_sequential)

    outputs = []
    for kernel in (_run_admission_sequential, _run_admission_piecewise):
        telemetry = Telemetry() if with_telemetry else None
        out, stats = _run_admission_kernel(simulator, kernel, workload,
                                           arrivals, scenario,
                                           idx=idx,
                                           telemetry=telemetry)
        outputs.append((out, stats, telemetry))
    (a, stats_a, tel_a), (b, stats_b, tel_b) = outputs
    assert np.array_equal(a[0], b[0])          # served positions
    assert a[1].tolist() == b[1].tolist()      # starts, bit for bit
    assert a[2].tolist() == b[2].tolist()      # finishes, bit for bit
    assert np.array_equal(a[3], b[3])          # dropped positions
    assert a[4] == b[4]                        # drop reasons
    assert stats_a == stats_b
    if with_telemetry:
        assert _telemetry_rows(tel_a) == _telemetry_rows(tel_b)
        assert _span_set(tel_a) == _span_set(tel_b)
    return stats_a


def test_admission_piecewise_matches_sequential_open_queue(simulator):
    """An under-capacity trace against a deep bound stays on the
    batched attempt-zero path almost everywhere; every surface
    matches the sequential reference."""
    scenario = FaultScenario(
        name="adm-open", seed=4,
        admission=AdmissionPolicy(max_queue_depth=64, max_deferrals=3))
    light = [InferenceRequest(1, 128, 16), InferenceRequest(1, 256, 32)]
    workload = WorkloadVector.sample_mix(light, 400, seed=7)
    arrivals = arrivals_poisson(400, 0.2, seed=7)
    stats = _assert_kernels_identical(simulator, workload, arrivals,
                                      scenario)
    assert stats["dropped"] == 0  # the bound never bites


def test_admission_piecewise_matches_sequential_saturated(simulator):
    """A saturated queue forces the sequential drain fallback (dense
    deferrals and sheds); stats, backoff float folds, and drop order
    still match bit for bit."""
    scenario = FaultScenario(
        name="adm-sat", seed=4,
        admission=AdmissionPolicy(max_queue_depth=1, max_deferrals=2),
        retry=RetryPolicy(max_retries=3, timeout_s=0.05,
                          backoff_base_s=0.02, backoff_factor=2.0))
    workload = _workload(400, seed=8)
    arrivals = arrivals_poisson(400, 4.0, seed=8)
    stats = _assert_kernels_identical(simulator, workload, arrivals,
                                      scenario)
    assert stats["dropped"] > 100  # genuinely saturated
    assert stats["deferred"] > 100


def test_admission_piecewise_matches_sequential_with_faults(simulator):
    """Admission + segment boundaries + stall draws together: the
    probe batching composes with the Mode A segment machinery,
    telemetry rows and spans included."""
    scenario = FaultScenario(
        name="adm-mixed", seed=6,
        events=(
            FaultEvent(kind=FaultKind.PCIE_STALL, magnitude=0.05),
            FaultEvent(kind=FaultKind.GPU_HBM_PRESSURE, start=20.0,
                       duration=120.0, magnitude=0.35),
        ),
        retry=RetryPolicy(max_retries=3, timeout_s=0.05,
                          backoff_base_s=0.02, backoff_factor=2.0),
        admission=AdmissionPolicy(max_queue_depth=8, max_deferrals=3))
    workload = _workload(300, seed=9)
    arrivals = arrivals_poisson(300, 2.5, seed=9)
    _assert_kernels_identical(simulator, workload, arrivals, scenario,
                              with_telemetry=True)


def test_admission_piecewise_honors_global_indices(simulator):
    """Replica-sharded calls pass global request indices; RNG draws
    and span names must key on them identically in both kernels."""
    scenario = FaultScenario(
        name="adm-idx", seed=5,
        events=(FaultEvent(kind=FaultKind.PCIE_STALL, magnitude=0.05),),
        retry=RetryPolicy(max_retries=2, timeout_s=0.05,
                          backoff_base_s=0.01, backoff_factor=2.0),
        admission=AdmissionPolicy(max_queue_depth=4, max_deferrals=2))
    workload = _workload(200, seed=10)
    arrivals = arrivals_poisson(200, 2.0, seed=10)
    idx = list(range(100, 500, 2))  # as a replica shard would pass
    _assert_kernels_identical(simulator, workload, arrivals, scenario,
                              idx=idx, with_telemetry=True)


# ----------------------------------------------------------------------
# Satellite 3: run() dispatch honors vectorized=/streaming=
# ----------------------------------------------------------------------
def test_run_vectorized_true_is_honored_under_scenario(simulator):
    scenario = get_scenario("gpu-pressure")
    workload = _workload(50, seed=1)
    arrivals = arrivals_poisson(50, 2.0, seed=1)
    vec = _fresh(simulator).run(workload.to_requests(), arrivals,
                                scenario=scenario, vectorized=True)
    assert isinstance(vec, VectorizedDegradedReport)
    loop = _fresh(simulator).run(workload.to_requests(), arrivals,
                                 scenario=scenario, vectorized=False)
    assert isinstance(loop, DegradedServingReport)
    _assert_parity(loop, vec)


def test_run_columnar_workload_takes_piecewise_engine(simulator):
    scenario = get_scenario("cxl-contention")
    workload = _workload(50, seed=2)
    arrivals = arrivals_poisson(50, 2.0, seed=2)
    report = _fresh(simulator).run(workload, arrivals,
                                   scenario=scenario)
    assert isinstance(report, VectorizedDegradedReport)


def test_run_auto_vectorize_threshold_applies_to_degraded(simulator):
    scenario = get_scenario("pcie-downshift")
    sim = _fresh(simulator)
    sim.AUTO_VECTORIZE_MIN_REQUESTS = 8
    workload = _workload(10, seed=3)
    arrivals = arrivals_poisson(10, 2.0, seed=3)
    over = sim.run(workload.to_requests(), arrivals, scenario=scenario)
    assert isinstance(over, VectorizedDegradedReport)
    under = sim.run(workload.to_requests()[:4], arrivals[:4],
                    scenario=scenario)
    assert isinstance(under, DegradedServingReport)
    assert not isinstance(under, VectorizedDegradedReport)


def test_run_streaming_with_degraded_loop_raises(simulator):
    scenario = get_scenario("pcie-downshift")
    workload = _workload(10, seed=4)
    arrivals = arrivals_poisson(10, 2.0, seed=4)
    with pytest.raises(ConfigurationError, match="streaming"):
        _fresh(simulator).run(workload.to_requests(), arrivals,
                              scenario=scenario, vectorized=False,
                              streaming=True)
    # streaming works fine on the piecewise engine.
    report = _fresh(simulator).run(workload.to_requests(), arrivals,
                                   scenario=scenario, vectorized=True,
                                   streaming=False)
    assert isinstance(report, VectorizedDegradedReport)


# ----------------------------------------------------------------------
# Multi-replica degraded dispatch
# ----------------------------------------------------------------------
def _assert_fleet_parity(loop_fleet, vec_fleet):
    assert isinstance(loop_fleet, DegradedScaleOutReport)
    assert isinstance(vec_fleet, DegradedScaleOutReport)
    assert np.array_equal(loop_fleet.merged.starts,
                          vec_fleet.merged.starts)
    assert np.array_equal(loop_fleet.merged.finishes,
                          vec_fleet.merged.finishes)
    assert np.array_equal(loop_fleet.merged.served_index,
                          vec_fleet.merged.served_index)
    assert np.array_equal(loop_fleet.merged.dropped_index,
                          vec_fleet.merged.dropped_index)
    assert loop_fleet.merged.dropped_reasons == \
        vec_fleet.merged.dropped_reasons
    assert loop_fleet.stats.as_dict() == vec_fleet.stats.as_dict()
    assert loop_fleet.n_dropped == vec_fleet.n_dropped
    if loop_fleet.merged.n_served:
        for fraction in (0.5, 0.95, 1.0):
            assert loop_fleet.latency_percentile(fraction) == \
                vec_fleet.latency_percentile(fraction)
        assert loop_fleet.mean_queue_delay == vec_fleet.mean_queue_delay


@pytest.mark.parametrize("name", ["gpu-pressure", "pcie-flaky",
                                  "noisy-neighbor"])
def test_fleet_degraded_engines_bit_identical(simulator, name):
    scenario = get_scenario(name)
    workload = _workload(200, seed=6)
    arrivals = arrivals_poisson(200, 3.0, seed=6)
    fleet = MultiReplicaSimulator(simulator.estimator, 4)
    loop_fleet = fleet.run(workload, arrivals, scenario=scenario,
                           vectorized=False)
    vec_fleet = fleet.run(workload, arrivals, scenario=scenario,
                          vectorized=True)
    _assert_fleet_parity(loop_fleet, vec_fleet)


def test_fleet_single_replica_matches_single_server(simulator):
    """k=1 under a scenario is the single-server degraded run, bit
    for bit — the merge is the identity."""
    scenario = get_scenario("gpu-pressure")
    workload = _workload(120, seed=8)
    arrivals = arrivals_poisson(120, 2.0, seed=8)
    fleet = MultiReplicaSimulator(simulator.estimator, 1)
    fleet_report = fleet.run(workload, arrivals, scenario=scenario)
    single = run_degraded_vectorized(_fresh(simulator), workload,
                                     arrivals, scenario)
    assert np.array_equal(fleet_report.merged.starts, single.starts)
    assert np.array_equal(fleet_report.merged.finishes, single.finishes)
    assert fleet_report.stats.as_dict() == single.stats.as_dict()


def test_fleet_degraded_error_paths(simulator):
    scenario = get_scenario("gpu-pressure")
    workload = _workload(20, seed=9)
    arrivals = arrivals_poisson(20, 2.0, seed=9)
    least = MultiReplicaSimulator(simulator.estimator, 2,
                                  dispatch="least-loaded")
    with pytest.raises(ConfigurationError, match="round-robin"):
        least.run(workload, arrivals, scenario=scenario)
    fleet = MultiReplicaSimulator(simulator.estimator, 2)
    with pytest.raises(ConfigurationError, match="streaming"):
        fleet.run(workload, arrivals, scenario=scenario,
                  vectorized=False, streaming=True)
    with pytest.raises(ConfigurationError):
        fleet.run(workload, arrivals, vectorized=False)


# ----------------------------------------------------------------------
# Satellite 2: fleet percentiles pool, never average
# ----------------------------------------------------------------------
def test_scaleout_percentiles_pool_over_all_replicas(simulator):
    workload = _workload(150, seed=10)
    arrivals = arrivals_poisson(150, 1.5, seed=10)
    report = MultiReplicaSimulator(simulator.estimator, 3).run(
        workload, arrivals, streaming=False)
    pooled = np.sort(report.merged.latencies)
    for fraction in (0.5, 0.9, 0.95, 0.99, 1.0):
        rank = min(pooled.size, max(1, math.ceil(fraction * pooled.size)))
        assert report.latency_percentile(fraction) == \
            float(pooled[rank - 1])
        assert report.latency_percentile(fraction) == \
            report.merged.latency_percentile(fraction)
    delays = report.merged.starts - report.merged.arrivals
    assert report.mean_queue_delay == report.merged.mean_queue_delay
    assert report.mean_queue_delay == pytest.approx(float(delays.mean()))


def test_degraded_scaleout_percentiles_pool(simulator):
    scenario = get_scenario("noisy-neighbor")
    workload = _workload(200, seed=12)
    arrivals = arrivals_poisson(200, 3.0, seed=12)
    report = MultiReplicaSimulator(simulator.estimator, 3).run(
        workload, arrivals, scenario=scenario)
    assert report.n_dropped > 0  # the preset sheds under this load
    pooled = np.sort(report.merged.latencies)
    rank = min(pooled.size, max(1, math.ceil(0.95 * pooled.size)))
    assert report.latency_percentile(0.95) == float(pooled[rank - 1])
    assert report.n_offered == workload.n_requests
    assert report.drop_rate == report.n_dropped / report.n_offered


# ----------------------------------------------------------------------
# Windowed time-series stay engine-invariant (dropped channel too)
# ----------------------------------------------------------------------
def test_timeseries_engine_invariant_with_drops(simulator):
    scenario = get_scenario("noisy-neighbor")
    workload = _workload(200, seed=14)
    arrivals = arrivals_poisson(200, 3.0, seed=14)
    loop, vec = _run_both(simulator, workload, arrivals, scenario)
    _assert_parity(loop, vec)
    series_loop = timeseries_from_report(loop, n_windows=24)
    series_vec = timeseries_from_report(vec, n_windows=24)
    for channel in ("arrived", "started", "finished", "queue_depth",
                    "busy_s"):
        assert np.array_equal(getattr(series_loop, channel),
                              getattr(series_vec, channel))
    assert series_loop.dropped is not None
    assert series_vec.dropped is not None
    assert np.array_equal(series_loop.dropped, series_vec.dropped)
    assert int(series_vec.dropped.sum()) == len(loop.dropped)


def test_fleet_timeseries_counts_shed_requests(simulator):
    scenario = get_scenario("noisy-neighbor")
    workload = _workload(200, seed=15)
    arrivals = arrivals_poisson(200, 3.0, seed=15)
    report = MultiReplicaSimulator(simulator.estimator, 3).run(
        workload, arrivals, scenario=scenario)
    series = fleet_timeseries(report, n_windows=16)
    assert series.merged.dropped is not None
    assert int(series.merged.dropped.sum()) == report.n_dropped
