"""Multi-replica scale-out: dispatch policies and fleet sizing."""

import numpy as np
import pytest

from repro.core.estimator import LiaEstimator
from repro.errors import CapacityError, ConfigurationError
from repro.models.workload import InferenceRequest
from repro.serving import (MultiReplicaSimulator, ServingSimulator,
                           WorkloadVector, arrivals_poisson,
                           plan_replicas, replicas_needed)

SHAPES = [InferenceRequest(1, 128, 16), InferenceRequest(1, 256, 32)]


@pytest.fixture
def estimator(opt_30b, spr_a100, eval_config):
    return LiaEstimator(opt_30b, spr_a100, eval_config)


def _workload(n, seed=0):
    return WorkloadVector.sample_mix(SHAPES, n, seed=seed)


def test_single_replica_matches_single_server(estimator):
    # k=1 is the plain simulator, bit for bit, under either policy.
    workload = _workload(200)
    arrivals = arrivals_poisson(200, 0.2, seed=1)
    single = ServingSimulator(estimator).run(workload, arrivals,
                                             streaming=False)
    for dispatch in ("round-robin", "least-loaded"):
        fleet = MultiReplicaSimulator(estimator, 1, dispatch=dispatch)
        report = fleet.run(workload, arrivals, streaming=False)
        assert np.array_equal(report.merged.starts, single.starts)
        assert np.array_equal(report.merged.finishes, single.finishes)
        assert report.latency_percentile(0.95) == \
            single.latency_percentile(0.95)


def test_round_robin_assignment_pattern(estimator):
    fleet = MultiReplicaSimulator(estimator, 3)
    report = fleet.run_poisson(_workload(10), 0.5, seed=0)
    assert report.assignment.tolist() == [0, 1, 2, 0, 1, 2, 0, 1, 2, 0]
    assert report.n_served == 10
    assert report.replica_ids == (0, 1, 2)
    assert sum(r.n_served for r in report.per_replica) == 10


def test_round_robin_replica_timeline_is_per_replica_fifo(estimator):
    # Each replica's sub-timeline obeys the single-server Lindley
    # recursion over its own sub-stream.
    workload = _workload(60)
    arrivals = arrivals_poisson(60, 1.0, seed=2)
    fleet = MultiReplicaSimulator(estimator, 4)
    report = fleet.run(workload, arrivals)
    for sub in report.per_replica:
        # FIFO within the replica: service starts never overlap.
        assert (sub.starts[1:] >= sub.finishes[:-1] - 1e-12).all()


def test_more_replicas_cut_queueing(estimator):
    workload = _workload(300)
    arrivals = arrivals_poisson(300, 1.0, seed=3)
    one = MultiReplicaSimulator(estimator, 1).run(workload, arrivals)
    four = MultiReplicaSimulator(estimator, 4).run(workload, arrivals)
    assert four.mean_queue_delay < one.mean_queue_delay
    assert four.latency_percentile(0.95) <= one.latency_percentile(0.95)


def test_least_loaded_never_worse_than_round_robin(estimator):
    workload = _workload(300)
    arrivals = arrivals_poisson(300, 1.0, seed=4)
    rr = MultiReplicaSimulator(estimator, 3, "round-robin").run(
        workload, arrivals)
    ll = MultiReplicaSimulator(estimator, 3, "least-loaded").run(
        workload, arrivals)
    # Join-earliest-free starts every request no later than any static
    # assignment does on average.
    assert ll.mean_queue_delay <= rr.mean_queue_delay + 1e-12


def test_least_loaded_ties_break_to_lowest_id(estimator):
    fleet = MultiReplicaSimulator(estimator, 3, "least-loaded")
    report = fleet.run(_workload(3), [0.0, 0.0, 0.0])
    # All replicas idle at t=0: requests go to 0, 1, 2 in order.
    assert report.assignment.tolist() == [0, 1, 2]


def test_idle_replicas_are_omitted_from_per_replica(estimator):
    report = MultiReplicaSimulator(estimator, 5).run(
        _workload(2), [0.0, 1.0])
    assert report.replica_ids == (0, 1)
    assert len(report.per_replica) == 2
    assert len(report.replica_utilizations) == 2


def test_merged_statistics_cover_all_replicas(estimator):
    workload = _workload(100)
    arrivals = arrivals_poisson(100, 0.8, seed=5)
    report = MultiReplicaSimulator(estimator, 2).run(workload, arrivals)
    assert report.makespan == max(sub.makespan
                                  for sub in report.per_replica)
    assert report.throughput_tokens_per_s == pytest.approx(
        workload.total_generated_tokens / report.makespan)
    assert 0.0 < report.utilization <= 1.0


def test_validation(estimator):
    with pytest.raises(ConfigurationError, match="n_replicas"):
        MultiReplicaSimulator(estimator, 0)
    with pytest.raises(ConfigurationError, match="dispatch"):
        MultiReplicaSimulator(estimator, 1, dispatch="random")
    fleet = MultiReplicaSimulator(estimator, 2)
    with pytest.raises(ConfigurationError, match="equal length"):
        fleet.run(_workload(3), [0.0])


def test_replicas_needed_is_minimal(estimator):
    workload = _workload(120)
    arrivals = arrivals_poisson(120, 1.0, seed=0)
    needed, report = replicas_needed(estimator, workload, arrivals,
                                     slo_p95_seconds=30.0)
    assert report.latency_percentile(0.95) <= 30.0
    if needed > 1:
        smaller = MultiReplicaSimulator(estimator, needed - 1)
        worse = smaller.run(workload, arrivals)
        assert worse.latency_percentile(0.95) > 30.0


def test_replicas_needed_infeasible_slo(estimator):
    # No fleet makes a request faster than its own service time.
    with pytest.raises(CapacityError):
        replicas_needed(estimator, _workload(10),
                        arrivals_poisson(10, 1.0, seed=0),
                        slo_p95_seconds=1e-6, max_replicas=8)


def test_replicas_needed_simulates_each_fleet_size_once(estimator,
                                                       monkeypatch):
    """The doubling phase can land on the exact answer the binary
    search re-derives; the per-``k`` memo must keep every fleet size
    to a single simulation."""
    import repro.serving.replicas as replicas_module

    evaluated = []
    original_run = replicas_module.MultiReplicaSimulator.run

    def counting_run(self, *args, **kwargs):
        evaluated.append(self.n_replicas)
        return original_run(self, *args, **kwargs)

    monkeypatch.setattr(replicas_module.MultiReplicaSimulator, "run",
                        counting_run)
    workload = _workload(150, seed=4)
    arrivals = arrivals_poisson(150, 2.0, seed=4)
    needed, report = replicas_needed(estimator, workload, arrivals,
                                     slo_p95_seconds=8.0)
    assert report.latency_percentile(0.95) <= 8.0
    assert len(evaluated) == len(set(evaluated)), evaluated
    assert needed in evaluated


def test_plan_replicas_prices_the_fleet(opt_30b):
    plan, report = plan_replicas(opt_30b, _workload(80),
                                 slo_p95_seconds=60.0,
                                 arrival_rate_per_s=0.5)
    assert plan.n_replicas == report.n_replicas
    assert report.latency_percentile(0.95) <= 60.0
    assert plan.p95_latency == report.latency_percentile(0.95)
    assert plan.usd_per_hour > 0.0


def test_replica_telemetry_gauges(estimator):
    from repro.telemetry import Telemetry, activate

    telemetry = Telemetry()
    fleet = MultiReplicaSimulator(estimator, 2,
                                  telemetry=telemetry)
    with activate(telemetry):
        fleet.run_poisson(_workload(20), 0.5, seed=0)
    system = estimator.system.name
    model = estimator.spec.name
    gauge = telemetry.metrics.gauge("serving.replicas", system=system,
                                    model=model)
    assert gauge.value == 2.0
    tracks = telemetry.tracer.tracks()
    assert any(track.startswith("server[") for track in tracks)


def test_sweep_fleet_sizes_process_path_matches_serial(estimator):
    from repro.experiments.parallel import (published_segments,
                                            shutdown_pools)
    from repro.serving.replicas import sweep_fleet_sizes

    workload = _workload(200)
    arrivals = arrivals_poisson(200, 5.0, seed=2)
    serial = sweep_fleet_sizes(estimator, workload, arrivals,
                               [1, 2, 4], processes=0)
    pooled = sweep_fleet_sizes(estimator, workload, arrivals,
                               [1, 2, 4], processes=2)
    assert serial == pooled
    assert [s["n_replicas"] for s in serial] == [1, 2, 4]
    assert all(s["fingerprint"] for s in serial)
    # The sweep published its workload/trace segments and released
    # them before returning — nothing may leak into later tests.
    assert published_segments() == []


def test_sweep_fleet_sizes_falls_back_off_zoo(spr_a100, eval_config):
    # A hand-built spec cannot rebuild by name inside a worker; the
    # sweep must quietly take the in-process path instead.
    from dataclasses import replace

    from repro.models.zoo import get_model
    from repro.serving.replicas import sweep_fleet_sizes

    spec = replace(get_model("opt-30b"), name="opt-30b-custom")
    estimator = LiaEstimator(spec, spr_a100, eval_config)
    workload = _workload(50)
    arrivals = arrivals_poisson(50, 5.0, seed=3)
    out = sweep_fleet_sizes(estimator, workload, arrivals, [1, 2],
                            processes=2)
    assert [s["n_replicas"] for s in out] == [1, 2]
