"""Fleet resilience: chaos, failover, autoscaling — and determinism.

The properties pinned here are the PR's acceptance bar:

* an **idle** scenario (no faults, no hedging, no autoscaler)
  reproduces the static :class:`MultiReplicaSimulator` fleet bit for
  bit, under either dispatch policy;
* chaos runs are deterministic — bit-identical reports across
  repeated runs and any ``REPRO_SWEEP_WORKERS`` setting;
* accounting never leaks a request:
  ``n_served + n_dropped == n_offered``;
* failover is load-bearing — the replica-crash scenario loses zero
  requests with retries on and strictly loses requests with the
  retry budget zeroed;
* the reactive autoscaler rides the diurnal trace within the
  per-class p95 SLO while spending >= 30% fewer replica-seconds
  than the static fleet sized for the same SLO.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import LiaConfig
from repro.core.estimator import LiaEstimator
from repro.errors import ConfigurationError
from repro.faults.fleet import (FleetScenario, HealthPolicy,
                                RedispatchPolicy, ReplicaFault,
                                ReplicaFaultKind,
                                builtin_fleet_scenarios,
                                get_fleet_scenario)
from repro.hardware.system import get_system
from repro.models.workload import InferenceRequest
from repro.models.zoo import get_model
from repro.serving import (AutoscalerPolicy, FleetSimulator,
                           MultiReplicaSimulator, WorkloadVector,
                           builtin_fleet_presets, get_fleet_preset,
                           replicas_needed)
from repro.workloads import TraceSpec, get_trace

SHAPES = [InferenceRequest(1, 128, 16), InferenceRequest(1, 256, 32)]


@pytest.fixture(scope="module")
def estimator():
    config = LiaConfig(enforce_host_capacity=False)
    return LiaEstimator(get_model("opt-30b"), get_system("spr-a100"),
                        config)


def _workload(n, seed=0):
    return WorkloadVector.sample_mix(SHAPES, n, seed=seed)


def _trace(n, rate=0.5, seed=1, kind="poisson"):
    return TraceSpec(kind=kind, n_requests=n, rate_per_s=rate,
                     seed=seed).generate()


def _fingerprint(report):
    """Every run surface that must be bit-stable."""
    return (report.served_index.tolist(), report.starts.tolist(),
            report.finishes.tolist(), report.assignment.tolist(),
            report.dropped_index.tolist(), report.dropped_reasons,
            report.stats.as_dict(), report.scale_events)


# ----------------------------------------------------------------------
# Idle scenario == static fleet, bit for bit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dispatch", ["round-robin", "least-loaded"])
def test_idle_fleet_reproduces_static_fleet(estimator, dispatch):
    workload = _workload(200)
    arrivals = _trace(200, rate=1.0)
    static = MultiReplicaSimulator(estimator, 3, dispatch=dispatch).run(
        workload, arrivals)
    fleet = FleetSimulator(estimator, 3, dispatch=dispatch).run(
        workload, arrivals)
    assert fleet.n_dropped == 0
    assert np.array_equal(fleet.starts, static.merged.starts)
    assert np.array_equal(fleet.finishes, static.merged.finishes)
    assert np.array_equal(fleet.assignment, static.assignment)
    assert fleet.latency_percentile(0.95) == \
        static.latency_percentile(0.95)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 2 ** 16), retries=st.integers(0, 3),
       dispatch=st.sampled_from(["round-robin", "least-loaded"]))
def test_any_idle_scenario_is_transparent(estimator, seed, retries,
                                          dispatch):
    """Whatever its seed, health knobs, or retry budget, a scenario
    with no faults and no hedging never touches the timeline."""
    scenario = FleetScenario(
        name="idle-ish", seed=seed,
        health=HealthPolicy(failure_threshold=1 + seed % 5),
        redispatch=RedispatchPolicy(max_retries=retries))
    assert scenario.idle
    workload = _workload(80)
    arrivals = _trace(80, rate=1.0)
    static = MultiReplicaSimulator(estimator, 2, dispatch=dispatch).run(
        workload, arrivals)
    fleet = FleetSimulator(estimator, 2, scenario=scenario,
                           dispatch=dispatch).run(workload, arrivals)
    assert fleet.n_dropped == 0
    assert np.array_equal(fleet.starts, static.merged.starts)
    assert np.array_equal(fleet.finishes, static.merged.finishes)
    assert np.array_equal(fleet.assignment, static.assignment)


# ----------------------------------------------------------------------
# Determinism: repeated runs, any worker count
# ----------------------------------------------------------------------
def test_chaos_run_is_deterministic_across_workers(estimator):
    workload = _workload(400)
    arrivals = get_trace("bursty").scaled(400).generate()
    scenario = get_fleet_scenario("bursty-chaos")
    saved = os.environ.get("REPRO_SWEEP_WORKERS")
    prints = []
    try:
        for workers in ("1", "4", "1"):
            os.environ["REPRO_SWEEP_WORKERS"] = workers
            report = FleetSimulator(estimator, 4,
                                    scenario=scenario).run(
                workload, arrivals)
            prints.append(_fingerprint(report))
    finally:
        if saved is None:
            os.environ.pop("REPRO_SWEEP_WORKERS", None)
        else:
            os.environ["REPRO_SWEEP_WORKERS"] = saved
    assert prints[0] == prints[1] == prints[2]


def test_autoscaled_run_is_deterministic(estimator):
    preset = get_fleet_preset("diurnal-autoscale")
    trace = preset.trace.scaled(800).generate()
    workload = _workload(800, seed=2)
    prints = [
        _fingerprint(preset.simulator(estimator).run(workload, trace))
        for __ in range(2)]
    assert prints[0] == prints[1]


# ----------------------------------------------------------------------
# Accounting: no request is ever lost or double-counted
# ----------------------------------------------------------------------
def test_accounting_invariant_across_builtin_scenarios(estimator):
    workload = _workload(300, seed=3)
    arrivals = _trace(300, rate=2.0, seed=3)
    for name, scenario in builtin_fleet_scenarios().items():
        report = FleetSimulator(estimator, 4, scenario=scenario).run(
            workload, arrivals)
        assert report.n_served + report.n_dropped == 300, name
        assert 0.0 <= report.availability <= 1.0, name
        # Served and dropped index sets partition the offered set.
        merged = np.sort(np.concatenate(
            [report.served_index, report.dropped_index]))
        assert np.array_equal(merged, np.arange(300)), name


def test_report_rejects_inconsistent_accounting(estimator):
    workload = _workload(10)
    arrivals = _trace(10)
    report = FleetSimulator(estimator, 2).run(workload, arrivals)
    from dataclasses import replace

    with pytest.raises(ConfigurationError, match="accounting"):
        replace(report, dropped_index=np.array([3], dtype=np.int64),
                dropped_reasons=("replica-crash",))


# ----------------------------------------------------------------------
# Failover is load-bearing
# ----------------------------------------------------------------------
def _crash_scenario(max_retries):
    return FleetScenario(
        name="crash", seed=1,
        faults=(ReplicaFault(ReplicaFaultKind.REPLICA_CRASH,
                             replica=1, start=50.0, duration=150.0),),
        redispatch=RedispatchPolicy(max_retries=max_retries))


def test_crash_with_retries_loses_nothing(estimator):
    workload = _workload(400, seed=5)
    arrivals = _trace(400, rate=1.5, seed=5)
    report = FleetSimulator(
        estimator, 3, scenario=_crash_scenario(2)).run(
        workload, arrivals)
    assert report.availability == 1.0
    assert report.stats.crash_failures > 0
    assert report.stats.redispatched > 0
    assert report.stats.breaker_ejections >= 1


def test_crash_without_retries_strictly_loses_requests(estimator):
    workload = _workload(400, seed=5)
    arrivals = _trace(400, rate=1.5, seed=5)
    report = FleetSimulator(
        estimator, 3, scenario=_crash_scenario(0)).run(
        workload, arrivals)
    assert report.n_dropped > 0
    assert set(report.dropped_reasons) == {"replica-crash"}
    # Every loss arrived before the crash window closed (a request
    # arriving just before the crash can still be killed in flight;
    # after recovery nothing fails).
    lost = report.arrivals[report.dropped_index]
    assert (lost < 200.0).all()


def test_gray_failure_trips_the_breaker_but_serves(estimator):
    scenario = FleetScenario(
        name="gray", seed=2,
        faults=(ReplicaFault(ReplicaFaultKind.REPLICA_SLOW,
                             replica=0, start=20.0, duration=400.0,
                             magnitude=5.0),),
        health=HealthPolicy(failure_threshold=3, cooldown_s=60.0,
                            slow_tolerance=3.0),
        redispatch=RedispatchPolicy(max_retries=1))
    workload = _workload(300, seed=6)
    arrivals = _trace(300, rate=1.0, seed=6)
    report = FleetSimulator(estimator, 3, scenario=scenario).run(
        workload, arrivals)
    # Gray failure never refuses a request — the breaker just stops
    # routing to the slow replica after enough inflated attempts.
    assert report.availability == 1.0
    assert report.stats.slow_attempts > 0
    assert report.stats.breaker_ejections >= 1


def test_hedging_duplicates_queued_dispatches(estimator):
    scenario = FleetScenario(
        name="hedge", redispatch=RedispatchPolicy(max_retries=1,
                                                  hedge_after_s=0.5))
    assert not scenario.idle
    workload = _workload(200, seed=7)
    arrivals = _trace(200, rate=4.0, seed=7)
    report = FleetSimulator(estimator, 3, scenario=scenario,
                            dispatch="least-loaded").run(
        workload, arrivals)
    assert report.availability == 1.0
    assert report.stats.hedges > 0
    assert 0 <= report.stats.hedge_wins <= report.stats.hedges


# ----------------------------------------------------------------------
# Autoscaler: SLO at >= 30% lower replica-seconds than static
# ----------------------------------------------------------------------
def test_autoscaler_beats_static_fleet_on_diurnal_trace(estimator):
    preset = get_fleet_preset("diurnal-autoscale")
    trace = preset.trace.generate()
    workload = _workload(preset.trace.n_requests, seed=0)

    report = preset.simulator(estimator).run(workload, trace)
    assert report.availability == 1.0
    assert report.stats.scale_ups >= 1
    assert report.stats.scale_downs >= 1
    for key, p95 in report.per_class_p95().items():
        assert p95 <= preset.slo_p95_s, (key, p95)

    static_k, static = replicas_needed(
        estimator, workload, trace,
        slo_p95_seconds=preset.slo_p95_s,
        dispatch=preset.dispatch)
    static_seconds = static_k * static.makespan
    assert report.replica_seconds <= 0.7 * static_seconds


def test_autoscaler_respects_replica_bounds(estimator):
    policy = AutoscalerPolicy(slo_p95_s=10.0, min_replicas=2,
                              max_replicas=4, interval_s=30.0,
                              provisioning_lag_s=30.0)
    workload = _workload(600, seed=8)
    arrivals = _trace(600, rate=3.0, seed=8)
    report = FleetSimulator(estimator, 2, autoscaler=policy,
                            dispatch="least-loaded").run(
        workload, arrivals)
    counts = report.replica_counts()
    assert counts.min() >= 2
    assert counts.max() <= 4
    assert report.availability == 1.0


# ----------------------------------------------------------------------
# Report surface: windows, timeseries, JSON payload
# ----------------------------------------------------------------------
def test_report_windows_and_timeseries_channels(estimator):
    workload = _workload(200, seed=9)
    arrivals = get_trace("bursty").scaled(200).generate()
    report = FleetSimulator(
        estimator, 4,
        scenario=get_fleet_scenario("replica-crash")).run(
        workload, arrivals)
    counts = report.replica_counts()
    assert counts.shape == (report.n_windows,)
    arrived, dropped, availability = report.windowed_availability()
    assert int(arrived.sum()) == report.n_offered
    assert int(dropped.sum()) == report.n_dropped
    assert ((0.0 <= availability) & (availability <= 1.0)).all()
    series = report.timeseries(n_windows=16)
    assert series.replicas.shape == (16,)
    assert series.availability.shape == (16,)
    payload = report.to_dict()
    assert payload["n_offered"] == 200
    assert payload["n_served"] + payload["n_dropped"] == 200
    assert payload["scenario"] == "replica-crash"
    assert len(payload["replica_counts"]) == report.n_windows


def test_fleet_presets_are_runnable(estimator):
    presets = builtin_fleet_presets()
    assert list(presets) == sorted(presets)
    for name, preset in presets.items():
        assert preset.name == name
        assert preset.trace.n_requests > 0
        preset.simulator(estimator)  # constructs and validates
    assert presets["diurnal-autoscale"].autoscaler is not None


def test_fleet_telemetry_gauges(estimator):
    from repro.telemetry import Telemetry, activate

    telemetry = Telemetry()
    simulator = FleetSimulator(
        estimator, 3, scenario=get_fleet_scenario("replica-crash"),
        telemetry=telemetry)
    workload = _workload(120, seed=10)
    arrivals = _trace(120, rate=1.5, seed=10)
    with activate(telemetry):
        report = simulator.run(workload, arrivals)
    labels = {"system": estimator.system.name,
              "model": estimator.spec.name}
    gauge = telemetry.metrics.gauge("fleet.replicas", **labels)
    assert gauge.value == float(report.replica_counts()[-1])


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def test_validation(estimator):
    with pytest.raises(ConfigurationError, match="n_replicas"):
        FleetSimulator(estimator, 0)
    with pytest.raises(ConfigurationError, match="dispatch"):
        FleetSimulator(estimator, 1, dispatch="chaotic")
    with pytest.raises(ConfigurationError, match="min_replicas"):
        FleetSimulator(estimator, 1,
                       autoscaler=AutoscalerPolicy(slo_p95_s=10.0,
                                                   min_replicas=2))
    fleet = FleetSimulator(estimator, 2)
    with pytest.raises(ConfigurationError, match="equal length"):
        fleet.run(_workload(3), [0.0])
    with pytest.raises(ConfigurationError, match="at least one request"):
        fleet.run([], [])


def test_sweep_fleet_grid_process_path_matches_serial(estimator):
    from repro.serving.fleet import run_fleet_cell, sweep_fleet_grid

    shapes = (InferenceRequest(1, 128, 16),
              InferenceRequest(1, 256, 32))
    kwargs = dict(shapes=shapes, seed=4, n_requests=120)
    serial = sweep_fleet_grid(estimator, ["steady"],
                              ["none", "replica-crash"], [1, 2],
                              processes=0, **kwargs)
    pooled = sweep_fleet_grid(estimator, ["steady"],
                              ["none", "replica-crash"], [1, 2],
                              processes=2, **kwargs)
    assert serial == pooled
    assert len(serial) == 4
    # Cell order is the nested product order, and each cell matches a
    # direct run_fleet_cell call.
    assert [(c["trace"], c["chaos"], c["n_replicas"])
            for c in serial] == [("steady", "none", 1),
                                 ("steady", "none", 2),
                                 ("steady", "replica-crash", 1),
                                 ("steady", "replica-crash", 2)]
    direct = run_fleet_cell(estimator, "steady", "replica-crash", 2,
                            **kwargs)
    assert serial[3] == direct
