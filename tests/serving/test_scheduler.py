"""Iteration-level continuous batching (repro.serving.scheduler).

The two contracts that make the scheduler trustworthy — the
FIFO-degenerate config reproduces the FIFO simulator bit for bit, and
every run is deterministic across reps and worker counts — plus the
KV-tier admission coupling and the telemetry surface.
"""

import os

import numpy as np
import pytest

from repro.core.config import LiaConfig
from repro.core.estimator import LiaEstimator
from repro.cxl.residency import KvTierCapacities
from repro.errors import CapacityError, ConfigurationError
from repro.hardware.system import get_system
from repro.models.workload import InferenceRequest
from repro.models.zoo import get_model
from repro.serving import WorkloadVector, arrivals_poisson
from repro.serving.scheduler import (
    MIXED_SHAPES,
    ContinuousBatchScheduler,
    ContinuousServingReport,
    SchedulerConfig,
    StepProfile,
    run_continuous_fleet,
)
from repro.serving.simulator import ServingSimulator

CONFIG = LiaConfig(enforce_host_capacity=False)
SHAPES = tuple(InferenceRequest(*shape) for shape in MIXED_SHAPES)


@pytest.fixture(scope="module")
def estimator():
    return LiaEstimator(get_model("opt-30b"), get_system("spr-a100"),
                        CONFIG)


@pytest.fixture(scope="module")
def cxl_estimator():
    system = get_system("spr-a100").with_cxl()
    return LiaEstimator(get_model("opt-30b"), system,
                        CONFIG.with_cxl_weights())


def _mix(n, rate=0.5, seed=0):
    workload = WorkloadVector.sample_mix(SHAPES, n, seed=seed)
    arrivals = arrivals_poisson(n, rate, seed=seed)
    return workload.to_requests(), arrivals


# ----------------------------------------------------------------------
# The degenerate contract
# ----------------------------------------------------------------------
def test_fifo_degenerate_is_bit_identical_to_simulator(estimator):
    requests, arrivals = _mix(300, rate=0.21)
    fifo = ServingSimulator(estimator).run(requests, arrivals,
                                           vectorized=False)
    degenerate = ContinuousBatchScheduler(
        estimator, SchedulerConfig.fifo_degenerate()).run(requests,
                                                          arrivals)
    assert isinstance(degenerate, ContinuousServingReport)
    assert len(degenerate.served) == len(fifo.served)
    for ours, theirs in zip(degenerate.served, fifo.served):
        assert ours.arrival == theirs.arrival
        assert ours.start == theirs.start
        assert ours.finish == theirs.finish
    # Every inherited statistic rides on the identical timelines —
    # including the overridden utilization property.
    assert degenerate.utilization == fifo.utilization
    assert degenerate.makespan == fifo.makespan
    assert (degenerate.throughput_tokens_per_s
            == fifo.throughput_tokens_per_s)
    assert degenerate.mean_queue_delay == fifo.mean_queue_delay
    for fraction in (0.5, 0.95, 0.99):
        assert (degenerate.latency_percentile(fraction)
                == fifo.latency_percentile(fraction))


def test_degenerate_detection_requires_all_three_knobs():
    assert SchedulerConfig.fifo_degenerate().is_fifo_degenerate
    assert SchedulerConfig(
        max_batch_requests=1, join="drain",
        kv_capacities=KvTierCapacities.unbounded()).is_fifo_degenerate
    assert not SchedulerConfig(max_batch_requests=1,
                               join="drain").is_fifo_degenerate
    assert not SchedulerConfig(max_batch_requests=1,
                               kv_unbounded=True).is_fifo_degenerate
    assert not SchedulerConfig(join="drain",
                               kv_unbounded=True).is_fifo_degenerate


# ----------------------------------------------------------------------
# Batching pays, deterministically
# ----------------------------------------------------------------------
def test_continuous_beats_fifo_throughput_when_saturated(estimator):
    requests, arrivals = _mix(400)
    fifo = ServingSimulator(estimator).run(requests, arrivals,
                                           vectorized=False)
    report = ContinuousBatchScheduler(estimator).run(requests,
                                                     arrivals)
    assert (report.throughput_tokens_per_s
            >= 1.3 * fifo.throughput_tokens_per_s)
    assert report.occupancy_peak > 1
    assert 1.0 < report.occupancy_mean <= 8.0
    assert report.policy_resolves > 0
    assert len(report.served) == 400
    assert report.admissions == 400
    # Concurrency never lets a request start before it arrives or
    # finish before it starts.
    for record in report.served:
        assert record.start >= record.arrival
        assert record.finish > record.start


def test_runs_are_deterministic_across_reps_and_workers(estimator):
    requests, arrivals = _mix(200)
    scheduler = ContinuousBatchScheduler(estimator)
    first = scheduler.run(requests, arrivals)
    second = scheduler.run(requests, arrivals)
    assert first.fingerprint() == second.fingerprint()
    saved = os.environ.get("REPRO_SWEEP_WORKERS")
    try:
        os.environ["REPRO_SWEEP_WORKERS"] = "1"
        serial = ContinuousBatchScheduler(estimator).run(requests,
                                                         arrivals)
    finally:
        if saved is None:
            os.environ.pop("REPRO_SWEEP_WORKERS", None)
        else:
            os.environ["REPRO_SWEEP_WORKERS"] = saved
    assert serial.fingerprint() == first.fingerprint()


def test_admission_is_fifo_under_batch_pressure(estimator):
    # One request per batch with step joins: requests are admitted
    # strictly in arrival order, so starts are non-decreasing.
    requests, arrivals = _mix(60)
    report = ContinuousBatchScheduler(
        estimator, SchedulerConfig(max_batch_requests=1)).run(
        requests, arrivals)
    starts = [record.start for record in report.served]
    assert starts == sorted(starts)


def test_run_poisson_matches_explicit_arrivals(estimator):
    workload = WorkloadVector.sample_mix(SHAPES, 120, seed=3)
    requests = workload.to_requests()
    arrivals = arrivals_poisson(120, 0.4, seed=11)
    scheduler = ContinuousBatchScheduler(estimator)
    via_trace = scheduler.run(workload, arrivals)
    via_poisson = scheduler.run_poisson(requests, 0.4, seed=11)
    assert via_trace.fingerprint() == via_poisson.fingerprint()


# ----------------------------------------------------------------------
# KV-tier admission
# ----------------------------------------------------------------------
def test_tight_caps_bound_kv_peaks_and_force_demotions(cxl_estimator):
    requests, arrivals = _mix(200)
    caps = KvTierCapacities(4e9, 8e9, 64e9)
    report = ContinuousBatchScheduler(
        cxl_estimator, SchedulerConfig(kv_capacities=caps)).run(
        requests, arrivals)
    assert report.kv_peak_bytes["hbm"] <= caps.hbm_bytes * (1 + 1e-9)
    assert report.kv_peak_bytes["ddr"] <= caps.ddr_bytes * (1 + 1e-9)
    assert report.kv_peak_bytes["cxl"] <= caps.cxl_bytes * (1 + 1e-9)
    assert report.kv_demotions > 0
    assert report.kv_demoted_bytes > 0.0
    assert len(report.served) == 200


def test_kv_pressure_only_delays_never_drops(estimator):
    requests, arrivals = _mix(120)
    spec = estimator.spec
    biggest = max(
        float(spec.kv_cache_bytes(r.batch_size, r.max_context_len))
        for r in requests)
    roomy = ContinuousBatchScheduler(
        estimator, SchedulerConfig(kv_unbounded=True)).run(requests,
                                                           arrivals)
    # Just enough room for the single largest request: admission
    # serializes under pressure but every request is still served.
    tight = ContinuousBatchScheduler(
        estimator, SchedulerConfig(
            kv_capacities=KvTierCapacities(biggest, 0.0, 0.0))).run(
        requests, arrivals)
    assert len(tight.served) == len(roomy.served) == 120
    assert tight.makespan >= roomy.makespan
    assert tight.occupancy_peak <= roomy.occupancy_peak


def test_request_larger_than_all_tiers_is_a_capacity_error(estimator):
    requests, arrivals = _mix(10)
    with pytest.raises(CapacityError) as excinfo:
        ContinuousBatchScheduler(
            estimator, SchedulerConfig(
                kv_capacities=KvTierCapacities(1e6, 0.0, 0.0))).run(
            requests, arrivals)
    assert excinfo.value.device == "kv-tiers"
    assert excinfo.value.requested > excinfo.value.available


def test_derived_capacities_consult_the_tiering_plan(cxl_estimator):
    scheduler = ContinuousBatchScheduler(cxl_estimator)
    capacities = scheduler._resolve_capacities()
    system = cxl_estimator.system
    weights = float(cxl_estimator.spec.total_param_bytes)
    # §6: weights in CXL, so DDR is all KV and the expander pool is
    # charged for the weights.
    assert capacities.ddr_bytes == pytest.approx(
        float(system.cpu.memory.capacity_bytes))
    assert capacities.cxl_bytes == pytest.approx(
        float(system.cxl_pool.capacity_bytes) - weights)


# ----------------------------------------------------------------------
# The step profile
# ----------------------------------------------------------------------
def test_step_profile_interpolates_within_grid_hull(estimator):
    profile = StepProfile(estimator, [1, 8, 16], [128, 512, 1024])
    exact = estimator.estimate(
        InferenceRequest(8, 512, 1)).decode.time
    assert profile.decode_step_time(8, 512) == pytest.approx(exact)
    between = profile.decode_step_time(12, 700)
    lo = profile.decode_step_time(8, 512)
    hi = profile.decode_step_time(16, 1024)
    assert lo <= between <= hi
    # Clamped at the edges, not extrapolated.
    assert (profile.decode_step_time(64, 4096)
            == profile.decode_step_time(16, 1024))
    prefill = profile.prefill_time(InferenceRequest(8, 512, 32))
    assert prefill == pytest.approx(
        estimator.estimate(InferenceRequest(8, 512, 1)).prefill.time)


def test_config_validation_is_a_clean_error():
    with pytest.raises(ConfigurationError):
        SchedulerConfig(max_batch_requests=0)
    with pytest.raises(ConfigurationError):
        SchedulerConfig(join="sometimes")
    with pytest.raises(ConfigurationError):
        SchedulerConfig(cxl_step_penalty=-0.1)
    with pytest.raises(ConfigurationError):
        SchedulerConfig(context_grid_points=1)
    with pytest.raises(ConfigurationError):
        SchedulerConfig(span_cap=-1)


# ----------------------------------------------------------------------
# Simulator dispatch
# ----------------------------------------------------------------------
def test_simulator_dispatches_scheduler_keyword(estimator):
    requests, arrivals = _mix(80)
    simulator = ServingSimulator(estimator)
    report = simulator.run(requests, arrivals, scheduler="continuous")
    assert isinstance(report, ContinuousServingReport)
    direct = ContinuousBatchScheduler(estimator).run(requests,
                                                     arrivals)
    assert report.fingerprint() == direct.fingerprint()
    via_config = simulator.run(
        requests, arrivals,
        scheduler=SchedulerConfig(max_batch_requests=4))
    assert via_config.occupancy_peak <= 4
    fifo = simulator.run(requests, arrivals, scheduler="fifo",
                         vectorized=False)
    assert not isinstance(fifo, ContinuousServingReport)


def test_simulator_rejects_scheduler_with_fifo_only_knobs(estimator):
    from repro.faults.scenarios import get_scenario

    requests, arrivals = _mix(20)
    simulator = ServingSimulator(estimator)
    with pytest.raises(ConfigurationError, match="fault-injected"):
        simulator.run(requests, arrivals,
                      scenario=get_scenario("noisy-neighbor"),
                      scheduler="continuous")
    with pytest.raises(ConfigurationError, match="FIFO engines"):
        simulator.run(requests, arrivals, vectorized=True,
                      scheduler="continuous")
    with pytest.raises(ConfigurationError, match="FIFO engines"):
        simulator.run(requests, arrivals, streaming=True,
                      scheduler="continuous")
    with pytest.raises(ConfigurationError, match="scheduler must be"):
        simulator.run(requests, arrivals, scheduler="orca")


# ----------------------------------------------------------------------
# Fleet + workload traces
# ----------------------------------------------------------------------
def test_continuous_fleet_shards_deterministically(estimator):
    requests, arrivals = _mix(240)
    merged = run_continuous_fleet(estimator, requests, arrivals,
                                  replicas=3)
    again = run_continuous_fleet(estimator, requests, arrivals,
                                 replicas=3)
    assert merged.fingerprint() == again.fingerprint()
    assert len(merged.served) == 240
    solo = run_continuous_fleet(estimator, requests, arrivals,
                                replicas=1)
    assert len(solo.served) == 240
    # Three replicas drain a saturated queue faster than one.
    assert merged.makespan <= solo.makespan
    with pytest.raises(ConfigurationError):
        run_continuous_fleet(estimator, requests, arrivals,
                             replicas=0)


def test_session_trace_never_deadlocks(estimator):
    from repro.workloads import get_trace

    arrivals = get_trace("sessions").scaled(200).generate()
    workload = WorkloadVector.sample_mix(SHAPES, 200, seed=5)
    report = ContinuousBatchScheduler(estimator).run(workload,
                                                     arrivals)
    assert len(report.served) == 200
    assert report.iterations > 0
    # Under a tight KV budget the same trace still drains fully.
    spec = estimator.spec
    biggest = max(
        float(spec.kv_cache_bytes(r.batch_size, r.max_context_len))
        for r in workload.to_requests())
    squeezed = ContinuousBatchScheduler(
        estimator, SchedulerConfig(
            kv_capacities=KvTierCapacities(biggest, biggest, 0.0))
    ).run(workload, arrivals)
    assert len(squeezed.served) == 200


# ----------------------------------------------------------------------
# Telemetry
# ----------------------------------------------------------------------
def test_scheduler_emits_counters_gauges_and_spans(estimator):
    from repro.telemetry import Telemetry

    telemetry = Telemetry()
    requests, arrivals = _mix(120)
    report = ContinuousBatchScheduler(
        estimator, telemetry=telemetry).run(requests, arrivals)
    metrics = telemetry.metrics
    labels = {"system": estimator.system.name,
              "model": estimator.spec.name}
    assert metrics.counter_value("scheduler.iterations",
                                 **labels) == report.iterations
    assert metrics.counter_value("scheduler.admissions",
                                 **labels) == report.admissions
    assert metrics.counter_value("scheduler.completions",
                                 **labels) == len(report.served)
    # ``Gauge.labels`` is already the canonical sorted-tuple LabelKey.
    gauges = {(gauge.name, gauge.labels): gauge.value
              for gauge in metrics.gauges()}
    key = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
    assert gauges[("scheduler.occupancy_mean", key)] == pytest.approx(
        report.occupancy_mean)
    spans = telemetry.tracer.spans_on("scheduler")
    assert spans
    assert len(spans) <= 1024 + 1  # step spans + possible drop note
    assert all(span.name == "decode-step" for span in spans
               if span.name != "dropped-spans")


def test_occupancy_timeseries_reflects_concurrency(estimator):
    from repro.telemetry.timeseries import (occupancy_timeseries,
                                            timeseries_from_report)

    requests, arrivals = _mix(200)
    report = ContinuousBatchScheduler(estimator).run(requests,
                                                     arrivals)
    grid, occupancy = occupancy_timeseries(report, n_windows=64)
    assert occupancy.shape == (64,)
    assert float(occupancy.max()) > 1.0  # batching happened
    # Exact integral: sum(occupancy * window) == total service time.
    total_service = sum(r.service_time for r in report.served)
    assert float(occupancy.sum() * grid.window_s) == pytest.approx(
        total_service, rel=1e-9)
    # FIFO reports cap at one request in service.
    fifo = ServingSimulator(estimator).run(requests, arrivals,
                                           vectorized=False)
    __, fifo_occ = occupancy_timeseries(fifo, n_windows=64)
    assert float(fifo_occ.max()) <= 1.0 + 1e-9
    # The generic windowed series consumes the continuous report
    # through the same .served surface.
    series = timeseries_from_report(report, n_windows=32)
    assert int(series.arrived.sum()) == 200
    assert int(series.finished.sum()) == 200


def test_step_profile_identical_across_process_counts(estimator):
    serial = StepProfile(estimator, [1, 4, 16], [64, 256],
                         processes=0)
    pooled = StepProfile(estimator, [1, 4, 16], [64, 256],
                         processes=2)
    assert np.array_equal(serial._decode_grid, pooled._decode_grid)
