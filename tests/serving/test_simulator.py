"""Online serving simulation."""

import pytest

from repro.core.config import LiaConfig
from repro.core.estimator import LiaEstimator
from repro.errors import ConfigurationError
from repro.models.workload import InferenceRequest
from repro.models.zoo import get_model
from repro.serving.simulator import ServingReport, ServingSimulator


@pytest.fixture
def simulator(opt_30b, spr_a100, eval_config):
    return ServingSimulator(LiaEstimator(opt_30b, spr_a100, eval_config))


def _requests(n):
    return [InferenceRequest(1, 128, 16) for __ in range(n)]


def test_fifo_ordering_and_queueing(simulator):
    # Three simultaneous arrivals: each waits for its predecessors.
    report = simulator.run(_requests(3), [0.0, 0.0, 0.0])
    served = report.served
    assert served[0].queue_delay == 0.0
    assert served[1].start == pytest.approx(served[0].finish)
    assert served[2].start == pytest.approx(served[1].finish)
    assert served[2].latency > served[0].latency


def test_idle_server_has_no_queue_delay(simulator):
    # Arrivals far apart: no queueing.
    report = simulator.run(_requests(3), [0.0, 1000.0, 2000.0])
    assert all(r.queue_delay == 0.0 for r in report.served)
    assert report.utilization < 0.1


def test_percentiles_and_throughput(simulator):
    report = simulator.run(_requests(5), [0.0] * 5)
    p50 = report.latency_percentile(0.5)
    p95 = report.latency_percentile(0.95)
    assert p50 <= p95 <= report.makespan
    assert report.throughput_tokens_per_s > 0
    with pytest.raises(ConfigurationError):
        report.latency_percentile(0.0)


def test_poisson_deterministic_with_seed(simulator):
    a = simulator.run_poisson(_requests(5), rate_per_s=0.5, seed=3)
    b = simulator.run_poisson(_requests(5), rate_per_s=0.5, seed=3)
    assert [r.arrival for r in a.served] == [r.arrival for r in b.served]
    c = simulator.run_poisson(_requests(5), rate_per_s=0.5, seed=4)
    assert [r.arrival for r in a.served] != [r.arrival for r in c.served]


def test_higher_rate_means_more_queueing(simulator):
    slow = simulator.run_poisson(_requests(8), rate_per_s=0.01, seed=0)
    fast = simulator.run_poisson(_requests(8), rate_per_s=10.0, seed=0)
    assert fast.mean_queue_delay >= slow.mean_queue_delay
    assert fast.utilization >= slow.utilization


def test_percentile_empty_report_is_impossible():
    # An empty report cannot exist, so percentiles never see one.
    with pytest.raises(ConfigurationError, match="at least one"):
        ServingReport([])


def test_percentile_single_request(simulator):
    report = simulator.run(_requests(1), [0.0])
    only = report.served[0].latency
    for fraction in (0.01, 0.5, 0.95, 1.0):
        assert report.latency_percentile(fraction) == pytest.approx(only)


def test_percentile_fraction_bounds(simulator):
    report = simulator.run(_requests(3), [0.0] * 3)
    with pytest.raises(ConfigurationError, match="fraction"):
        report.latency_percentile(0.0)
    with pytest.raises(ConfigurationError, match="fraction"):
        report.latency_percentile(1.0001)
    with pytest.raises(ConfigurationError, match="fraction"):
        report.latency_percentile(-0.5)
    # fraction 1.0 is inclusive: the slowest request.
    assert report.latency_percentile(1.0) == pytest.approx(
        max(r.latency for r in report.served))


def test_percentiles_cross_check_telemetry_histogram(simulator):
    # The streaming histogram the simulator feeds must agree with the
    # report's exact order statistics on the same run.
    from repro.telemetry import Telemetry, activate

    telemetry = Telemetry()
    with activate(telemetry):
        report = simulator.run(_requests(9), [0.0] * 9)
    histogram = telemetry.metrics.histogram(
        "serving.latency_s", system=simulator.estimator.system.name,
        model=simulator.estimator.spec.name)
    assert histogram.count == len(report.served)
    for fraction in (0.25, 0.5, 0.95, 0.99, 1.0):
        assert histogram.quantile(fraction) == pytest.approx(
            report.latency_percentile(fraction), rel=0.05)


def test_input_validation(simulator):
    with pytest.raises(ConfigurationError, match="equal length"):
        simulator.run(_requests(2), [0.0])
    with pytest.raises(ConfigurationError, match="non-decreasing"):
        simulator.run(_requests(2), [1.0, 0.0])
    with pytest.raises(ConfigurationError):
        simulator.run_poisson(_requests(1), rate_per_s=0.0)
    with pytest.raises(ConfigurationError):
        ServingReport([])
