"""Online serving simulation."""

import pytest

from repro.core.config import LiaConfig
from repro.core.estimator import LiaEstimator
from repro.errors import ConfigurationError
from repro.models.workload import InferenceRequest
from repro.models.zoo import get_model
from repro.serving.simulator import ServingReport, ServingSimulator


@pytest.fixture
def simulator(opt_30b, spr_a100, eval_config):
    return ServingSimulator(LiaEstimator(opt_30b, spr_a100, eval_config))


def _requests(n):
    return [InferenceRequest(1, 128, 16) for __ in range(n)]


def test_fifo_ordering_and_queueing(simulator):
    # Three simultaneous arrivals: each waits for its predecessors.
    report = simulator.run(_requests(3), [0.0, 0.0, 0.0])
    served = report.served
    assert served[0].queue_delay == 0.0
    assert served[1].start == pytest.approx(served[0].finish)
    assert served[2].start == pytest.approx(served[1].finish)
    assert served[2].latency > served[0].latency


def test_idle_server_has_no_queue_delay(simulator):
    # Arrivals far apart: no queueing.
    report = simulator.run(_requests(3), [0.0, 1000.0, 2000.0])
    assert all(r.queue_delay == 0.0 for r in report.served)
    assert report.utilization < 0.1


def test_percentiles_and_throughput(simulator):
    report = simulator.run(_requests(5), [0.0] * 5)
    p50 = report.latency_percentile(0.5)
    p95 = report.latency_percentile(0.95)
    assert p50 <= p95 <= report.makespan
    assert report.throughput_tokens_per_s > 0
    with pytest.raises(ConfigurationError):
        report.latency_percentile(0.0)


def test_poisson_deterministic_with_seed(simulator):
    a = simulator.run_poisson(_requests(5), rate_per_s=0.5, seed=3)
    b = simulator.run_poisson(_requests(5), rate_per_s=0.5, seed=3)
    assert [r.arrival for r in a.served] == [r.arrival for r in b.served]
    c = simulator.run_poisson(_requests(5), rate_per_s=0.5, seed=4)
    assert [r.arrival for r in a.served] != [r.arrival for r in c.served]


def test_higher_rate_means_more_queueing(simulator):
    slow = simulator.run_poisson(_requests(8), rate_per_s=0.01, seed=0)
    fast = simulator.run_poisson(_requests(8), rate_per_s=10.0, seed=0)
    assert fast.mean_queue_delay >= slow.mean_queue_delay
    assert fast.utilization >= slow.utilization


def test_percentile_empty_report_is_impossible():
    # An empty report cannot exist, so percentiles never see one.
    with pytest.raises(ConfigurationError, match="at least one"):
        ServingReport([])


def test_percentile_single_request(simulator):
    report = simulator.run(_requests(1), [0.0])
    only = report.served[0].latency
    for fraction in (0.01, 0.5, 0.95, 1.0):
        assert report.latency_percentile(fraction) == pytest.approx(only)


def test_percentile_fraction_bounds(simulator):
    report = simulator.run(_requests(3), [0.0] * 3)
    with pytest.raises(ConfigurationError, match="fraction"):
        report.latency_percentile(0.0)
    with pytest.raises(ConfigurationError, match="fraction"):
        report.latency_percentile(1.0001)
    with pytest.raises(ConfigurationError, match="fraction"):
        report.latency_percentile(-0.5)
    # fraction 1.0 is inclusive: the slowest request.
    assert report.latency_percentile(1.0) == pytest.approx(
        max(r.latency for r in report.served))


def test_percentiles_cross_check_telemetry_histogram(simulator):
    # The streaming histogram the simulator feeds must agree with the
    # report's exact order statistics on the same run.
    from repro.telemetry import Telemetry, activate

    telemetry = Telemetry()
    with activate(telemetry):
        report = simulator.run(_requests(9), [0.0] * 9)
    histogram = telemetry.metrics.histogram(
        "serving.latency_s", system=simulator.estimator.system.name,
        model=simulator.estimator.spec.name)
    assert histogram.count == len(report.served)
    for fraction in (0.25, 0.5, 0.95, 0.99, 1.0):
        assert histogram.quantile(fraction) == pytest.approx(
            report.latency_percentile(fraction), rel=0.05)


def test_input_validation(simulator):
    with pytest.raises(ConfigurationError, match="equal length"):
        simulator.run(_requests(2), [0.0])
    with pytest.raises(ConfigurationError, match="non-decreasing"):
        simulator.run(_requests(2), [1.0, 0.0])
    with pytest.raises(ConfigurationError):
        simulator.run_poisson(_requests(1), rate_per_s=0.0)
    with pytest.raises(ConfigurationError):
        ServingReport([])


def _report_with_latencies(latencies):
    # Back-to-back zero-queue requests with the given service times.
    from repro.serving.simulator import ServedRequest

    served = []
    clock = 0.0
    for latency in latencies:
        served.append(ServedRequest(
            request=InferenceRequest(1, 8, latency and 1 or 1),
            arrival=clock, start=clock, finish=clock + latency))
        clock += latency
    return ServingReport(served)


def test_percentile_nearest_rank_regression():
    # Regression: int(fraction * n) - 1 indexing under-reported tails.
    # With 10 known latencies, nearest-rank p95 = ceil(9.5) = 10th
    # smallest, p50 = 5th smallest, p90 = 9th, p10 = 1st.
    report = _report_with_latencies([float(i) for i in range(1, 11)])
    assert report.latency_percentile(0.95) == 10.0
    assert report.latency_percentile(0.90) == 9.0
    assert report.latency_percentile(0.50) == 5.0
    assert report.latency_percentile(0.10) == 1.0
    assert report.latency_percentile(1.0) == 10.0


def test_percentile_matches_histogram_convention():
    # The exact report and the streaming histogram use the same
    # nearest-rank ceil rule, so on well-separated samples they pick
    # the same order statistic (the histogram within bucket error).
    from repro.telemetry.metrics import StreamingHistogram

    latencies = [2.0 ** i for i in range(8)]
    report = _report_with_latencies(latencies)
    histogram = StreamingHistogram("t")
    for latency in latencies:
        histogram.observe(latency)
    for fraction in (0.2, 0.5, 0.75, 0.95):
        assert histogram.quantile(fraction) == pytest.approx(
            report.latency_percentile(fraction), rel=0.05)


def test_zero_makespan_throughput_regression():
    # Regression: an all-zero-service-time run divided by zero.
    report = _report_with_latencies([0.0, 0.0, 0.0])
    assert report.makespan == 0.0
    assert report.throughput_tokens_per_s == 0.0
    assert report.utilization == 0.0


def test_request_shape_memoization(simulator):
    # Identical request shapes estimate once; distinct shapes do not
    # share entries.  Latencies are unchanged by memoization.
    from repro.telemetry import Telemetry, activate

    shapes = [InferenceRequest(1, 128, 16), InferenceRequest(1, 128, 16),
              InferenceRequest(1, 64, 16), InferenceRequest(1, 128, 16)]
    telemetry = Telemetry()
    with activate(telemetry):
        report = simulator.run(shapes, [0.0] * len(shapes))
    assert telemetry.metrics.counter_value(
        "serving.estimates", result="computed") == 2
    assert telemetry.metrics.counter_value(
        "serving.estimates", result="memoized") == 2
    # service_time is finish - start, so equal memoized services can
    # differ by an ulp after the add/subtract round trip.
    served = report.served
    assert served[0].service_time == pytest.approx(
        served[1].service_time, rel=1e-12)
    assert served[1].service_time == pytest.approx(
        served[3].service_time, rel=1e-12)
    assert served[2].service_time != pytest.approx(
        served[0].service_time, rel=1e-6)
