"""Bit-identity and unit tests for the vectorized serving engine.

The contract under test: ``ServingSimulator.run(..., vectorized=True)``
returns the *same bits* as the per-request loop — timelines,
percentiles, utilization, queue delay, and the ``serving.*``
telemetry — for every workload the loop accepts.
"""

import random

import numpy as np
import pytest

from repro.core.estimator import LiaEstimator
from repro.errors import ConfigurationError
from repro.models.workload import InferenceRequest
from repro.serving import (ServingSimulator, VectorizedServingReport,
                           WorkloadVector, arrivals_poisson,
                           lindley_timeline, validate_arrivals)
from repro.telemetry import Telemetry, activate


@pytest.fixture
def simulator(opt_30b, spr_a100, eval_config):
    return ServingSimulator(LiaEstimator(opt_30b, spr_a100, eval_config))


def _fresh_simulator(simulator):
    """Same estimator, empty cross-run service cache."""
    return ServingSimulator(simulator.estimator)


SHAPE_MIXES = {
    "single": [InferenceRequest(1, 128, 16)],
    "tier1": [InferenceRequest(1, 128, 16), InferenceRequest(1, 256, 32),
              InferenceRequest(1, 512, 32), InferenceRequest(8, 256, 32)],
    "batched": [InferenceRequest(8, 256, 32), InferenceRequest(16, 128, 16)],
}


def _serving_rows(telemetry):
    return [row for row in telemetry.metrics.snapshot()
            if str(row["metric"]).startswith("serving.")]


# ----------------------------------------------------------------------
# The tentpole property: loop == vectorized, bit for bit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mix", sorted(SHAPE_MIXES))
@pytest.mark.parametrize("n_requests,rate", [(1, 0.5), (7, 0.05),
                                             (64, 0.2), (257, 1.0),
                                             (1000, 0.21)])
def test_vectorized_bit_identical_to_loop(simulator, mix, n_requests,
                                          rate):
    shapes = SHAPE_MIXES[mix]
    workload = WorkloadVector.sample_mix(shapes, n_requests, seed=7)
    requests = workload.to_requests()
    arrivals = arrivals_poisson(n_requests, rate, seed=11)

    loop_telemetry = Telemetry()
    with activate(loop_telemetry):
        loop = _fresh_simulator(simulator).run(
            requests, arrivals, vectorized=False)
    vec_telemetry = Telemetry()
    with activate(vec_telemetry):
        vec = _fresh_simulator(simulator).run(
            workload, arrivals, vectorized=True, streaming=False)

    assert isinstance(vec, VectorizedServingReport)
    # Timelines: every start and finish, to the last bit.
    assert vec.starts.tolist() == [r.start for r in loop.served]
    assert vec.finishes.tolist() == [r.finish for r in loop.served]
    # Statistics: the exact floats the loop report computes.
    for fraction in (0.25, 0.5, 0.95, 0.99, 1.0):
        assert (vec.latency_percentile(fraction)
                == loop.latency_percentile(fraction))
    assert vec.utilization == loop.utilization
    assert vec.mean_queue_delay == loop.mean_queue_delay
    assert vec.makespan == loop.makespan
    assert vec.throughput_tokens_per_s == loop.throughput_tokens_per_s
    # Telemetry: the serving.* rows agree (the estimator's own
    # cache.* metrics are process-global and order-dependent, so the
    # parity contract is scoped to the serving layer).
    assert _serving_rows(vec_telemetry) == _serving_rows(loop_telemetry)


def test_vectorized_estimate_counters_match_loop(simulator):
    # computed = one per distinct shape, memoized = the repeats —
    # the loop's memoization totals, reproduced without the loop.
    shapes = SHAPE_MIXES["tier1"]
    workload = WorkloadVector.sample_mix(shapes, 100, seed=0)
    arrivals = arrivals_poisson(100, 0.2, seed=0)
    telemetry = Telemetry()
    with activate(telemetry):
        _fresh_simulator(simulator).run(workload, arrivals,
                                        vectorized=True)
    assert telemetry.metrics.counter_value(
        "serving.estimates", result="computed") == len(shapes)
    assert telemetry.metrics.counter_value(
        "serving.estimates", result="memoized") == 100 - len(shapes)


def test_vectorized_spans_match_loop_below_cap(simulator):
    shapes = SHAPE_MIXES["tier1"]
    workload = WorkloadVector.sample_mix(shapes, 40, seed=3)
    requests = workload.to_requests()
    arrivals = arrivals_poisson(40, 0.3, seed=3)
    loop_telemetry = Telemetry()
    with activate(loop_telemetry):
        _fresh_simulator(simulator).run(requests, arrivals,
                                        vectorized=False)
    vec_telemetry = Telemetry()
    with activate(vec_telemetry):
        _fresh_simulator(simulator).run(workload, arrivals,
                                        vectorized=True)

    def rows(telemetry):
        return [(s.name, s.track, s.start, s.finish)
                for s in telemetry.tracer.spans]

    assert rows(vec_telemetry) == rows(loop_telemetry)
    assert vec_telemetry.metrics.counter_value(
        "serving.spans_dropped") == 0.0


def test_vectorized_span_cap_counts_overflow(simulator):
    from repro.serving.vectorized import run_vectorized

    workload = WorkloadVector.sample_mix(
        SHAPE_MIXES["single"], 50, seed=0)
    arrivals = arrivals_poisson(50, 0.5, seed=0)
    telemetry = Telemetry()
    with activate(telemetry):
        run_vectorized(simulator, workload, arrivals, span_cap=8)
    # Spans exist only for the first 8 requests; the other 42 are
    # counted, not emitted.
    spanned = {int(s.name[len("request["):-1])
               for s in telemetry.tracer.spans}
    assert spanned and max(spanned) <= 7
    assert telemetry.metrics.counter_value(
        "serving.spans_dropped",
        system=simulator.estimator.system.name,
        model=simulator.estimator.spec.name) == 42.0


def test_span_cap_truncation_is_loud(simulator):
    # Satellite contract: a capped trace warns once and exposes the
    # loss on the shared ``telemetry.spans.dropped`` counter, on top
    # of the serving layer's own counter above.
    from repro.serving.vectorized import run_vectorized

    workload = WorkloadVector.sample_mix(
        SHAPE_MIXES["single"], 50, seed=0)
    arrivals = arrivals_poisson(50, 0.5, seed=0)
    telemetry = Telemetry()
    with activate(telemetry):
        with pytest.warns(RuntimeWarning,
                          match="span cap truncated the trace"):
            run_vectorized(simulator, workload, arrivals, span_cap=8)
    assert telemetry.metrics.counter_value(
        "telemetry.spans.dropped",
        component="serving.vectorized") == 42.0


def test_auto_vectorize_dispatch(simulator):
    n = ServingSimulator.AUTO_VECTORIZE_MIN_REQUESTS
    workload = WorkloadVector.sample_mix(SHAPE_MIXES["single"], n,
                                         seed=0)
    arrivals = arrivals_poisson(n, 5.0, seed=0)
    auto = simulator.run(workload.to_requests(), arrivals)
    assert isinstance(auto, VectorizedServingReport)
    forced = simulator.run(workload.to_requests()[:4], arrivals[:4])
    assert not isinstance(forced, VectorizedServingReport)
    # A columnar workload always takes the array engine.
    small = WorkloadVector.sample_mix(SHAPE_MIXES["single"], 4, seed=0)
    assert isinstance(simulator.run(small, arrivals[:4]),
                      VectorizedServingReport)


# ----------------------------------------------------------------------
# Lindley recursion kernel
# ----------------------------------------------------------------------
def _reference_timeline(arrivals, services):
    starts, finishes = [], []
    free_at = 0.0
    for arrival, service in zip(arrivals, services):
        start = arrival if arrival >= free_at else free_at
        free_at = start + service
        starts.append(start)
        finishes.append(free_at)
    return starts, finishes


@pytest.mark.parametrize("trial", range(25))
def test_lindley_fuzz_bit_identical(trial):
    rng = random.Random(trial)
    n = rng.choice([1, 2, 3, 17, 64, 65, 100, 513])
    rate = rng.choice([0.05, 0.3, 2.0])
    arrivals, clock = [], 0.0
    for __ in range(n):
        clock += rng.expovariate(rate)
        arrivals.append(clock)
    services = [abs(rng.gauss(1.0 / rate, 0.5 / rate)) for __ in range(n)]
    if trial % 5 == 0:  # zero-service runs stress boundary detection
        k = min(3, n)
        services = [0.0] * k + services[k:]
    starts, finishes = lindley_timeline(np.asarray(arrivals),
                                        np.asarray(services))
    ref_starts, ref_finishes = _reference_timeline(arrivals, services)
    assert starts.tolist() == ref_starts
    assert finishes.tolist() == ref_finishes


def test_lindley_rejects_mismatched_lengths():
    with pytest.raises(ConfigurationError):
        lindley_timeline(np.zeros(3), np.zeros(2))


# ----------------------------------------------------------------------
# WorkloadVector
# ----------------------------------------------------------------------
def test_workload_round_trip_preserves_order():
    requests = [InferenceRequest(1, 128, 16), InferenceRequest(8, 256, 32),
                InferenceRequest(1, 128, 16)]
    workload = WorkloadVector.from_requests(requests)
    assert workload.to_requests() == requests
    assert len(workload) == 3
    assert workload.shapes == (requests[0], requests[1])
    assert workload.request_at(2) == requests[0]


def test_workload_sample_mix_deterministic():
    shapes = SHAPE_MIXES["tier1"]
    a = WorkloadVector.sample_mix(shapes, 100, seed=5)
    b = WorkloadVector.sample_mix(shapes, 100, seed=5)
    assert np.array_equal(a.codes, b.codes)
    c = WorkloadVector.sample_mix(shapes, 100, seed=6)
    assert not np.array_equal(a.codes, c.codes)


def test_workload_counts_and_tokens():
    shapes = [InferenceRequest(1, 8, 2), InferenceRequest(1, 8, 4)]
    workload = WorkloadVector(shapes=tuple(shapes),
                              codes=np.array([0, 1, 1, 0, 1]))
    assert workload.counts().tolist() == [2, 3]
    expected = (2 * shapes[0].total_generated_tokens
                + 3 * shapes[1].total_generated_tokens)
    assert workload.total_generated_tokens == expected
    # Cached: the second ask returns the same array object.
    assert workload.counts() is workload.counts()


def test_workload_validation():
    shape = InferenceRequest(1, 8, 2)
    with pytest.raises(ConfigurationError, match="at least one"):
        WorkloadVector(shapes=(), codes=np.array([], dtype=np.int64))
    with pytest.raises(ConfigurationError, match="distinct"):
        WorkloadVector(shapes=(shape, shape), codes=np.array([0]))
    with pytest.raises(ConfigurationError, match="index"):
        WorkloadVector(shapes=(shape,), codes=np.array([0, 1]))
    with pytest.raises(ConfigurationError, match="index"):
        WorkloadVector(shapes=(shape,), codes=np.array([-1]))
    with pytest.raises(ConfigurationError, match="flat"):
        WorkloadVector(shapes=(shape,), codes=np.zeros((2, 2), int))
    with pytest.raises(ConfigurationError):
        WorkloadVector.sample_mix([shape], 0)
    with pytest.raises(ConfigurationError, match="weights"):
        WorkloadVector.sample_mix([shape], 5, weights=[1.0, 2.0])
    with pytest.raises(ConfigurationError, match="non-negative"):
        WorkloadVector.sample_mix([shape], 5, weights=[-1.0])


def test_workload_subset():
    workload = WorkloadVector.sample_mix(SHAPE_MIXES["tier1"], 20,
                                         seed=1)
    sub = workload.subset(np.arange(0, 20, 2))
    assert sub.shapes == workload.shapes
    assert np.array_equal(sub.codes, workload.codes[::2])


# ----------------------------------------------------------------------
# Arrival validation + generation
# ----------------------------------------------------------------------
def test_validate_arrivals_rejects_nan():
    with pytest.raises(ConfigurationError, match="NaN"):
        validate_arrivals([0.0, float("nan"), 2.0])


def test_validate_arrivals_rejects_decreasing_and_2d():
    with pytest.raises(ConfigurationError, match="non-decreasing"):
        validate_arrivals([0.0, 2.0, 1.0])
    with pytest.raises(ConfigurationError, match="flat"):
        validate_arrivals([[0.0], [1.0]])
    out = validate_arrivals([0.0, 0.0, 3.0])
    assert isinstance(out, np.ndarray) and out.dtype == np.float64


def test_arrivals_poisson_matches_inline_stream():
    # Byte-identical to the generator run_poisson always used: one
    # random.Random(seed) stream of expovariate gaps.
    rng = random.Random(9)
    clock, expected = 0.0, []
    for __ in range(50):
        clock += rng.expovariate(0.25)
        expected.append(clock)
    assert arrivals_poisson(50, 0.25, seed=9) == expected
    assert arrivals_poisson(0, 1.0) == []
    with pytest.raises(ConfigurationError):
        arrivals_poisson(-1, 1.0)
    with pytest.raises(ConfigurationError):
        arrivals_poisson(5, 0.0)


def test_run_poisson_loop_vs_vectorized(simulator):
    workload = WorkloadVector.sample_mix(SHAPE_MIXES["tier1"], 200,
                                         seed=2)
    loop = simulator.run_poisson(workload.to_requests(), 0.21, seed=2,
                                 vectorized=False)
    vec = simulator.run_poisson(workload, 0.21, seed=2)
    assert vec.starts.tolist() == [r.start for r in loop.served]
    assert vec.finishes.tolist() == [r.finish for r in loop.served]


# ----------------------------------------------------------------------
# Report behavior
# ----------------------------------------------------------------------
def _vector_report(simulator, n, streaming=None, rate=0.5):
    workload = WorkloadVector.sample_mix(SHAPE_MIXES["tier1"], n, seed=0)
    arrivals = arrivals_poisson(n, rate, seed=0)
    return simulator.run(workload, arrivals, streaming=streaming)


def test_streaming_percentiles_kick_in_above_limit(simulator):
    exact = _vector_report(simulator, 64, streaming=False)
    assert not exact.streaming_percentiles
    forced = _vector_report(simulator, 64, streaming=True)
    assert forced.streaming_percentiles
    # Streaming stays within the histogram's relative-error envelope.
    for fraction in (0.5, 0.95, 0.99):
        assert forced.latency_percentile(fraction) == pytest.approx(
            exact.latency_percentile(fraction), rel=0.05)


def test_exact_percentile_sort_is_cached(simulator):
    report = _vector_report(simulator, 32, streaming=False)
    report.latency_percentile(0.5)
    first = report._sorted_latencies
    assert first is not None
    report.latency_percentile(0.95)
    assert report._sorted_latencies is first


def test_summary_matches_individual_statistics(simulator):
    report = _vector_report(simulator, 100, streaming=False)
    summary = report.summary((0.5, 0.95, 0.99))
    assert summary["p50"] == report.latency_percentile(0.5)
    assert summary["p95"] == report.latency_percentile(0.95)
    assert summary["p99"] == report.latency_percentile(0.99)
    assert summary["utilization"] == report.utilization
    assert summary["mean_queue_delay_s"] == report.mean_queue_delay
    assert summary["makespan_s"] == report.makespan
    assert (summary["throughput_tokens_per_s"]
            == report.throughput_tokens_per_s)


def test_materialize_round_trip(simulator):
    report = _vector_report(simulator, 10)
    classic = report.materialize()
    assert [r.start for r in classic.served] == report.starts.tolist()
    assert classic.latency_percentile(0.5) == pytest.approx(
        report.latency_percentile(0.5))
    rows = list(report.iter_timeline())
    assert len(rows) == 10
    assert rows[0][0] == report.workload.request_at(0)


def test_loop_report_percentile_cache(simulator):
    # Satellite: the classic report sorts its latency vector once.
    requests = [InferenceRequest(1, 128, 16)] * 5
    report = simulator.run(requests, [0.0] * 5, vectorized=False)
    report.latency_percentile(0.5)
    cached = report._sorted_latencies
    assert cached is not None
    report.latency_percentile(0.99)
    assert report._sorted_latencies is cached
