"""SLO-driven system planning."""

import pytest

from repro.core.config import LiaConfig
from repro.errors import ConfigurationError
from repro.models.workload import InferenceRequest
from repro.models.zoo import get_model
from repro.serving.planner import choose_system


@pytest.fixture
def workload():
    return [InferenceRequest(1, 128, 16) for __ in range(4)]


def test_recommends_cheapest_feasible(workload, eval_config):
    spec = get_model("opt-30b")
    choices = choose_system(spec, workload, slo_p95_seconds=1000.0,
                            candidates=("spr-a100", "gnr-h100"),
                            config=eval_config)
    assert choices[0].feasible
    # A loose SLO makes both feasible; the cheaper SPR-A100 wins.
    assert choices[0].name == "spr-a100"
    assert choices[0].usd_per_hour <= choices[1].usd_per_hour


def test_tight_slo_excludes_slow_systems(workload, eval_config):
    spec = get_model("opt-175b")
    # Find the actual spread first: GNR systems decode ~1.8x faster.
    loose = choose_system(spec, workload, slo_p95_seconds=1e6,
                          candidates=("spr-a100", "gnr-h100"),
                          config=eval_config)
    spr = next(c for c in loose if c.name == "spr-a100")
    gnr = next(c for c in loose if c.name == "gnr-h100")
    assert gnr.p95_latency < spr.p95_latency
    # An SLO between the two keeps only the GNR box.
    slo = (spr.p95_latency + gnr.p95_latency) / 2
    tight = choose_system(spec, workload, slo_p95_seconds=slo,
                          candidates=("spr-a100", "gnr-h100"),
                          config=eval_config)
    assert tight[0].name == "gnr-h100" and tight[0].feasible
    spr_choice = next(c for c in tight if c.name == "spr-a100")
    assert not spr_choice.feasible
    assert "SLO" in spr_choice.reason


def test_oom_reported_not_raised(workload):
    spec = get_model("opt-175b")
    # Strict memory enforcement: 175B + KV fits, but an absurd batch
    # of 4096 would not — emulate with a big-batch workload.
    big = [InferenceRequest(4096, 1024, 16)]
    choices = choose_system(spec, big, slo_p95_seconds=1e9,
                            candidates=("spr-a100",),
                            config=LiaConfig())
    assert not choices[0].feasible
    assert "OOM" in choices[0].reason


def test_input_validation(workload, eval_config):
    spec = get_model("opt-30b")
    with pytest.raises(ConfigurationError):
        choose_system(spec, workload, slo_p95_seconds=0.0,
                      config=eval_config)
    with pytest.raises(ConfigurationError):
        choose_system(spec, [], slo_p95_seconds=1.0, config=eval_config)
