"""Offline batch packing."""

import pytest

from repro.core.config import LiaConfig
from repro.errors import CapacityError, ConfigurationError
from repro.models.workload import InferenceRequest
from repro.serving.batcher import pack_requests


def _singles(lengths, output_len=32):
    return [InferenceRequest(1, length, output_len)
            for length in lengths]


def test_all_members_preserved(opt_30b, spr_a100):
    requests = _singles([32, 64, 128, 256, 512])
    batches = pack_requests(requests, opt_30b, spr_a100, LiaConfig())
    assert sum(b.n_members for b in batches) == len(requests)


def test_small_corpus_packs_into_one_batch(opt_30b, spr_a100):
    requests = _singles([100, 110, 120, 130])
    batches = pack_requests(requests, opt_30b, spr_a100, LiaConfig())
    assert len(batches) == 1
    batch = batches[0]
    assert batch.request.batch_size == 4
    assert batch.request.input_len == 130  # padded to the longest
    assert 0.8 <= batch.prompt_efficiency <= 1.0


def test_memory_limit_splits_batches(opt_30b, spr_a100):
    # 2000 long sequences cannot share one batch on 512 GiB.
    requests = _singles([1024] * 2000)
    batches = pack_requests(requests, opt_30b, spr_a100, LiaConfig())
    assert len(batches) >= 2
    from repro.core.estimator import check_host_capacity, host_memory_usage
    for batch in batches:
        check_host_capacity(
            host_memory_usage(opt_30b, batch.request, spr_a100,
                              LiaConfig()), spr_a100)


def test_max_batch_respected(opt_30b, spr_a100):
    requests = _singles([64] * 10)
    batches = pack_requests(requests, opt_30b, spr_a100, LiaConfig(),
                            max_batch=4)
    assert all(b.request.batch_size <= 4 for b in batches)
    assert len(batches) == 3


def test_length_sorting_limits_padding(opt_30b, spr_a100):
    # Mixed lengths: sorting keeps short and long prompts apart.
    requests = _singles([32] * 8 + [2000] * 8)
    batches = pack_requests(requests, opt_30b, spr_a100, LiaConfig(),
                            max_batch=8)
    assert len(batches) == 2
    assert batches[0].request.input_len == 32
    assert batches[1].request.input_len == 2000
    assert all(b.prompt_efficiency == 1.0 for b in batches)


def test_oversized_single_request_raises(spr_a100):
    from repro.models.zoo import get_model
    spec = get_model("opt-175b")  # weights alone near the 512 GiB DDR
    huge = [InferenceRequest(1, 2000, 48)]
    # One request fits; force failure via many KV-heavy members being
    # impossible is covered above — here check the single-too-big path
    # with a tiny-memory configuration is not available, so assert the
    # call either packs or raises CapacityError coherently.
    try:
        batches = pack_requests(huge, spec, spr_a100, LiaConfig())
        assert batches[0].n_members == 1
    except CapacityError:
        pass


def test_input_validation(opt_30b, spr_a100):
    with pytest.raises(ConfigurationError, match="no requests"):
        pack_requests([], opt_30b, spr_a100, LiaConfig())
    with pytest.raises(ConfigurationError, match="B=1"):
        pack_requests([InferenceRequest(2, 32, 32)], opt_30b, spr_a100,
                      LiaConfig())
    with pytest.raises(ConfigurationError, match="max_batch"):
        pack_requests(_singles([32]), opt_30b, spr_a100, LiaConfig(),
                      max_batch=0)
