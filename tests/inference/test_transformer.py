"""Functional transformer numerics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.inference.transformer import (
    TinyTransformer,
    gelu,
    layer_norm,
    softmax,
)
from repro.models.zoo import get_model


@pytest.fixture
def model(tiny_spec):
    return TinyTransformer(tiny_spec, seed=0)


def test_layer_norm_normalizes():
    x = np.random.default_rng(0).normal(3, 5, (4, 16)).astype(np.float32)
    gamma = np.ones(16, dtype=np.float32)
    beta = np.zeros(16, dtype=np.float32)
    normed = layer_norm(x, gamma, beta)
    np.testing.assert_allclose(normed.mean(axis=-1), 0.0, atol=1e-5)
    np.testing.assert_allclose(normed.std(axis=-1), 1.0, atol=1e-2)


def test_softmax_rows_sum_to_one():
    x = np.random.default_rng(0).normal(0, 10, (3, 7)).astype(np.float32)
    probs = softmax(x)
    np.testing.assert_allclose(probs.sum(axis=-1), 1.0, rtol=1e-6)
    assert (probs >= 0).all()


def test_softmax_stable_for_large_inputs():
    probs = softmax(np.array([[1e4, 1e4 - 1.0]], dtype=np.float32))
    assert np.isfinite(probs).all()


def test_gelu_fixed_points():
    assert gelu(np.array([0.0]))[0] == 0.0
    assert gelu(np.array([10.0]))[0] == pytest.approx(10.0, rel=1e-3)
    assert gelu(np.array([-10.0]))[0] == pytest.approx(0.0, abs=1e-3)


def test_deterministic_weights(tiny_spec):
    a = TinyTransformer(tiny_spec, seed=42)
    b = TinyTransformer(tiny_spec, seed=42)
    np.testing.assert_array_equal(a.layers[0].w_qkv, b.layers[0].w_qkv)
    c = TinyTransformer(tiny_spec, seed=43)
    assert not np.array_equal(a.layers[0].w_qkv, c.layers[0].w_qkv)


def test_layer_weight_bytes_match_table1(tiny_spec, model):
    d = tiny_spec.d_model
    # 12 d^2 weights at 2 bytes each per layer.
    assert model.layers[0].nbytes_bf16 == 2 * (
        3 * d * d + d * d + d * tiny_spec.d_ff + tiny_spec.d_ff * d)


def test_causal_masking(model):
    # The first token's output must not depend on later tokens.
    rng = np.random.default_rng(0)
    tokens = rng.integers(0, model.spec.vocab_size, (1, 8))
    logits_full = model.forward_reference(tokens)
    tokens_changed = tokens.copy()
    tokens_changed[0, -1] = (tokens[0, -1] + 1) % model.spec.vocab_size
    logits_changed = model.forward_reference(tokens_changed)
    np.testing.assert_array_equal(logits_full[:, 0, :],
                                  logits_changed[:, 0, :])
    assert not np.array_equal(logits_full[:, -1, :],
                              logits_changed[:, -1, :])


def test_forward_shapes(model):
    tokens = np.zeros((2, 5), dtype=np.int64)
    logits = model.forward_reference(tokens)
    assert logits.shape == (2, 5, model.spec.vocab_size)
    assert np.isfinite(logits).all()


def test_embed_rejects_overflow(model):
    tokens = np.zeros((1, model.spec.max_seq_len + 1), dtype=np.int64)
    with pytest.raises(ConfigurationError):
        model.embed(tokens)


def test_embed_rejects_1d(model):
    with pytest.raises(ConfigurationError):
        model.embed(np.zeros(4, dtype=np.int64))


def test_moe_model_rejected():
    with pytest.raises(ConfigurationError, match="MoE"):
        TinyTransformer(get_model("opt-moe-8x30b"))


def test_llama_tiny_gqa_swiglu_runs():
    spec = get_model("llama-tiny")
    model = TinyTransformer(spec, seed=0)
    # GQA: KV projection is kv_dim-wide, half the query width here.
    assert model.layers[0].w_qkv.shape == (64, 64 + 2 * spec.kv_dim)
    # SwiGLU: FC1 packs gate + up projections.
    assert model.layers[0].w_fc1.shape == (64, 2 * spec.d_ff)
    tokens = np.arange(10, dtype=np.int64).reshape(2, 5)
    logits = model.forward_reference(tokens)
    assert logits.shape == (2, 5, spec.vocab_size)
    assert np.isfinite(logits).all()


def test_llama_tiny_causal(tiny_spec):
    model = TinyTransformer(get_model("llama-tiny"), seed=1)
    rng = np.random.default_rng(0)
    tokens = rng.integers(0, model.spec.vocab_size, (1, 6))
    logits = model.forward_reference(tokens)
    changed = tokens.copy()
    changed[0, -1] = (tokens[0, -1] + 1) % model.spec.vocab_size
    logits_changed = model.forward_reference(changed)
    np.testing.assert_array_equal(logits[:, 0, :],
                                  logits_changed[:, 0, :])
