"""KV-cache placement and traffic accounting."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, PlacementError
from repro.inference.kv_cache import KVCache, make_caches
from repro.inference.tensors import DeviceTensor, TransferLog


def _kv(batch, seq, dim, device="cpu", value=1.0):
    data = np.full((batch, seq, dim), value, dtype=np.float32)
    return DeviceTensor(data, device)


def test_append_and_grow():
    cache = KVCache()
    log = TransferLog()
    cache.append(_kv(2, 4, 8), _kv(2, 4, 8), log, layer=0)
    assert cache.seq_len == 4
    cache.append(_kv(2, 1, 8), _kv(2, 1, 8), log, layer=0)
    assert cache.seq_len == 5


def test_cpu_generated_kv_incurs_no_store_traffic():
    cache = KVCache(home_device="cpu")
    log = TransferLog()
    cache.append(_kv(1, 4, 8, "cpu"), _kv(1, 4, 8, "cpu"), log, layer=0)
    assert log.total_bytes == 0


def test_gpu_generated_kv_logs_eq9_store():
    cache = KVCache(home_device="cpu")
    log = TransferLog()
    cache.append(_kv(1, 4, 8, "gpu"), _kv(1, 4, 8, "gpu"), log, layer=3)
    # K and V, BF16 bytes each.
    assert log.total_bytes == 2 * (1 * 4 * 8 * 2)
    assert all("kv-store:L3" == r.label for r in log.records)


def test_read_from_home_is_free():
    cache = KVCache()
    log = TransferLog()
    cache.append(_kv(1, 4, 8), _kv(1, 4, 8), log, layer=0)
    cache.read("cpu", log, layer=0)
    assert log.total_bytes == 0


def test_read_across_boundary_logs_eq5_load():
    cache = KVCache()
    log = TransferLog()
    cache.append(_kv(1, 4, 8), _kv(1, 4, 8), log, layer=0)
    k, v = cache.read("gpu", log, layer=0)
    assert k.device == v.device == "gpu"
    assert log.total_bytes == 2 * (1 * 4 * 8 * 2)


def test_empty_read_rejected():
    with pytest.raises(PlacementError, match="empty"):
        KVCache().read_k("cpu", TransferLog(), layer=0)


def test_mismatched_kv_shapes_rejected():
    with pytest.raises(ConfigurationError):
        KVCache().append(_kv(1, 4, 8), _kv(1, 5, 8), TransferLog(), 0)


def test_batch_change_rejected():
    cache = KVCache()
    log = TransferLog()
    cache.append(_kv(2, 4, 8), _kv(2, 4, 8), log, 0)
    with pytest.raises(ConfigurationError, match="batch"):
        cache.append(_kv(3, 1, 8), _kv(3, 1, 8), log, 0)


def test_nbytes_accounting():
    cache = KVCache()
    cache.append(_kv(2, 4, 8), _kv(2, 4, 8), TransferLog(), 0)
    assert cache.nbytes_bf16 == 2 * (2 * 4 * 8) * 2


def test_make_caches():
    caches = make_caches(4)
    assert len(caches) == 4
    with pytest.raises(ConfigurationError):
        make_caches(0)
