"""Device tensors and transfer logging."""

import numpy as np
import pytest

from repro.errors import PlacementError
from repro.inference.tensors import DeviceTensor, TransferLog


def test_placement_enforced():
    tensor = DeviceTensor(np.zeros((2, 2), dtype=np.float32), "cpu")
    assert tensor.require_on("cpu") is tensor.data
    with pytest.raises(PlacementError):
        tensor.require_on("gpu")


def test_unknown_device_rejected():
    with pytest.raises(PlacementError):
        DeviceTensor(np.zeros(2), "tpu")


def test_move_logs_bf16_bytes():
    log = TransferLog()
    tensor = DeviceTensor(np.zeros((4, 8), dtype=np.float32), "cpu")
    moved = tensor.to("gpu", log, "weights:test")
    assert moved.device == "gpu"
    assert log.total_bytes == 4 * 8 * 2  # BF16 wire format
    assert log.records[0].source == "cpu"
    assert log.records[0].destination == "gpu"


def test_move_to_same_device_is_free():
    log = TransferLog()
    tensor = DeviceTensor(np.zeros(4, dtype=np.float32), "cpu")
    same = tensor.to("cpu", log, "noop")
    assert same is tensor
    assert log.total_bytes == 0


def test_move_copies_data():
    log = TransferLog()
    tensor = DeviceTensor(np.ones(4, dtype=np.float32), "cpu")
    moved = tensor.to("gpu", log, "x")
    moved.data[0] = 99.0
    assert tensor.data[0] == 1.0


def test_bytes_by_label_groups():
    log = TransferLog()
    a = DeviceTensor(np.zeros(4, dtype=np.float32), "cpu")
    a.to("gpu", log, "weights")
    a.to("gpu", log, "weights")
    a.to("gpu", log, "kv")
    grouped = log.bytes_by_label()
    assert grouped["weights"] == 2 * 8
    assert grouped["kv"] == 8


def test_bytes_between_directions():
    log = TransferLog()
    a = DeviceTensor(np.zeros(4, dtype=np.float32), "cpu")
    b = a.to("gpu", log, "h2d")
    b.to("cpu", log, "d2h")
    assert log.bytes_between("cpu", "gpu") == 8
    assert log.bytes_between("gpu", "cpu") == 8


def test_clear():
    log = TransferLog()
    DeviceTensor(np.zeros(4, dtype=np.float32), "cpu").to("gpu", log, "x")
    log.clear()
    assert log.total_bytes == 0
