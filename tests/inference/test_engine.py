"""Cooperative engine: policy invariance and traffic fidelity."""

import numpy as np
import pytest

from repro.core.policy import (
    FULL_CPU,
    FULL_GPU,
    PARTIAL_CPU,
    OffloadPolicy,
)
from repro.inference.engine import CooperativeEngine
from repro.inference.transformer import TinyTransformer
from repro.models.sublayers import Stage, Sublayer, sublayer_cost


@pytest.fixture
def model(tiny_spec):
    return TinyTransformer(tiny_spec, seed=0)


def _generate(model, prefill, decode, prompt=None, new_tokens=4,
              resident=None):
    rng = np.random.default_rng(0)
    if prompt is None:
        prompt = rng.integers(0, model.spec.vocab_size, (2, 6))
    engine = CooperativeEngine(model, prefill, decode,
                               resident_layers=resident)
    return engine.generate(prompt, new_tokens)


def test_policy_invariance_of_tokens(model):
    """The paper's correctness premise: offloading never changes
    outputs."""
    reference = _generate(model, FULL_CPU, FULL_CPU)
    for prefill, decode in ((FULL_GPU, FULL_GPU),
                            (FULL_GPU, PARTIAL_CPU),
                            (FULL_CPU, FULL_GPU),
                            (PARTIAL_CPU, PARTIAL_CPU)):
        other = _generate(model, prefill, decode)
        np.testing.assert_array_equal(reference.tokens, other.tokens)
        np.testing.assert_allclose(reference.logits, other.logits,
                                   rtol=1e-5, atol=1e-6)


def test_policy_invariance_all_64_policies_first_token(model):
    rng = np.random.default_rng(1)
    prompt = rng.integers(0, model.spec.vocab_size, (1, 4))
    reference = None
    for policy in OffloadPolicy.all_policies():
        result = _generate(model, policy, policy, prompt=prompt,
                           new_tokens=1)
        if reference is None:
            reference = result.tokens
        np.testing.assert_array_equal(result.tokens, reference)


def test_matches_reference_forward(model):
    """Prefill+decode with KV caching equals a full-context forward."""
    rng = np.random.default_rng(2)
    prompt = rng.integers(0, model.spec.vocab_size, (1, 5))
    result = _generate(model, FULL_GPU, FULL_CPU, prompt=prompt,
                       new_tokens=3)
    # Replay: full forward over prompt + generated prefix must predict
    # the same next token at each step.
    sequence = prompt.copy()
    for step in range(3):
        logits = model.forward_reference(sequence)
        expected = logits[:, -1, :].argmax(axis=-1)
        assert expected[0] == result.tokens[0, step]
        sequence = np.concatenate([sequence, expected[:, None]], axis=1)


def test_full_cpu_generates_no_pcie_traffic(model):
    result = _generate(model, FULL_CPU, FULL_CPU)
    assert result.pcie_bytes == 0


def test_full_gpu_weight_traffic_matches_table1(model):
    spec = model.spec
    prompt = np.zeros((1, 4), dtype=np.int64)
    result = _generate(model, FULL_GPU, FULL_GPU, prompt=prompt,
                       new_tokens=2)
    by_label = result.transfers.bytes_by_label()
    # Per layer per forward pass, each parameter sublayer moves D_Y.
    passes = 2  # one prefill + one decode step
    for sub, weight in (("QKV_MAPPING", "w_qkv"),
                        ("OUTPUT_PROJECTION", "w_out"),
                        ("FC1", "w_fc1"), ("FC2", "w_fc2")):
        for layer in range(spec.n_layers):
            label = f"weights:L{layer}:{sub}"
            expected = 2 * getattr(model.layers[layer], weight).size
            assert by_label[label] == expected * passes


def test_kv_store_traffic_matches_eq9(model):
    spec = model.spec
    prompt = np.zeros((1, 4), dtype=np.int64)
    result = _generate(model, FULL_GPU, FULL_CPU, prompt=prompt,
                       new_tokens=1)
    by_label = result.transfers.bytes_by_label()
    # Prefill on GPU: each layer stores D_KV = 2 * e * B * L * d back.
    expected = sublayer_cost(spec, Sublayer.QKV_MAPPING, Stage.PREFILL,
                             1, 4).d_kv_out
    for layer in range(spec.n_layers):
        assert by_label[f"kv-store:L{layer}"] == expected


def test_kv_load_traffic_for_gpu_attention(model):
    """Decode with attention on GPU fetches the whole KV history —
    exactly the Eq. (5) traffic compute-offloading avoids."""
    prompt = np.zeros((1, 4), dtype=np.int64)
    gpu_attn = OffloadPolicy.from_string("100111")
    result = _generate(model, FULL_CPU, gpu_attn, prompt=prompt,
                       new_tokens=2)
    labels = result.transfers.bytes_by_label()
    assert any(label.startswith("kv-load") for label in labels)


def test_resident_layers_skip_weight_traffic(model):
    prompt = np.zeros((1, 4), dtype=np.int64)
    resident = list(range(model.spec.n_layers))
    result = _generate(model, FULL_GPU, FULL_GPU, prompt=prompt,
                       new_tokens=2, resident=resident)
    labels = result.transfers.bytes_by_label()
    assert not any(label.startswith("weights:") for label in labels)


def test_partial_policy_crosses_boundary_for_activations(model):
    prompt = np.zeros((1, 4), dtype=np.int64)
    result = _generate(model, PARTIAL_CPU, PARTIAL_CPU, prompt=prompt,
                       new_tokens=1)
    labels = result.transfers.bytes_by_label()
    # Attention scoring on CPU, neighbours on GPU: activations cross.
    assert any(label.startswith("act:") for label in labels)


def test_gqa_policy_invariance():
    from repro.models.zoo import get_model

    llama = TinyTransformer(get_model("llama-tiny"), seed=0)
    rng = np.random.default_rng(3)
    prompt = rng.integers(0, llama.spec.vocab_size, (2, 5))
    reference = None
    for prefill, decode in ((FULL_CPU, FULL_CPU),
                            (FULL_GPU, FULL_GPU),
                            (FULL_GPU, PARTIAL_CPU)):
        engine = CooperativeEngine(llama, prefill, decode)
        result = engine.generate(prompt, 3)
        if reference is None:
            reference = result.tokens
        np.testing.assert_array_equal(result.tokens, reference)


def test_generate_validation(model):
    engine = CooperativeEngine(model, FULL_CPU, FULL_CPU)
    from repro.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        engine.generate(np.zeros(4, dtype=np.int64), 1)
    with pytest.raises(ConfigurationError):
        engine.generate(np.zeros((1, 4), dtype=np.int64), 0)
