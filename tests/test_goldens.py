"""Golden-value regression tier: pinned paper operating points.

Recomputes each case in :mod:`repro.experiments.goldens` and compares
it against the committed snapshot.  A failure here means an estimator
or optimizer change moved a published operating point — either fix
the regression or regenerate the snapshot deliberately with
``scripts/gen_goldens.py`` and justify the move in review.
"""

import os

import pytest

from repro.experiments.goldens import (GOLDEN_CASES, compare_payloads,
                                       golden_path, load_golden)


@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_golden_snapshot_committed(name):
    assert os.path.exists(golden_path(name)), (
        f"missing golden {name}; run scripts/gen_goldens.py")


@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_golden_values_unchanged(name):
    golden = load_golden(name)
    recomputed = GOLDEN_CASES[name]()
    problems = compare_payloads(golden, recomputed)
    assert not problems, (
        f"{name} drifted from its golden snapshot "
        f"({len(problems)} mismatches):\n  " + "\n  ".join(problems[:10]))


def test_goldens_contain_policy_vectors():
    """The Fig. 9 snapshot pins actual 6-bit policy vectors."""
    golden = load_golden("fig09_policy_map")
    grid = [row for row in golden["rows"]
            if row.get("stage") in ("prefill", "decode")]
    assert grid, "fig09 golden has no policy-grid rows"
    for row in grid:
        bits = [c for c in str(row["policy"]) if c in "01"]
        assert len(bits) == 6, f"not a 6-bit policy: {row['policy']!r}"
