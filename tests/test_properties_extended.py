"""Property-based tests for the allocator, batcher, and serving
simulator (stateful/fuzz style)."""

import numpy as np
import pytest
from hypothesis import example, given, settings, strategies as st

from repro.core.config import LiaConfig
from repro.core.estimator import (
    LiaEstimator,
    check_host_capacity,
    host_memory_usage,
)
from repro.cxl.allocator import TieredAllocator
from repro.errors import CapacityError
from repro.hardware.memory import cxl_expander, ddr_subsystem
from repro.hardware.system import get_system
from repro.models.workload import InferenceRequest
from repro.models.zoo import get_model
from repro.serving.batcher import pack_requests
from repro.serving.simulator import ServingSimulator


# ----------------------------------------------------------------------
# Allocator: no interleaving of operations can over-commit a pool.
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(ops=st.lists(
    st.tuples(st.sampled_from(["alloc", "release"]),
              st.integers(0, 9),
              st.floats(0, 80 * 2**30)),
    min_size=1, max_size=40))
def test_allocator_never_overcommits(ops):
    allocator = TieredAllocator()
    allocator.add_pool(cxl_expander("pool", capacity_gib=128))
    live = set()
    for index, (kind, label_id, size) in enumerate(ops):
        label = f"a{label_id}"
        if kind == "alloc" and label not in live:
            try:
                allocator.allocate(label, "pool", size)
                live.add(label)
            except CapacityError:
                pass
        elif kind == "release" and label in live:
            allocator.release(label)
            live.remove(label)
        used = allocator.used("pool")
        assert 0.0 <= used <= allocator.capacity("pool")
        assert used == pytest.approx(
            sum(a.num_bytes for a in allocator.allocations("pool")))


# ----------------------------------------------------------------------
# Batcher: membership conservation and feasibility for any corpus.
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(lengths=st.lists(st.integers(16, 1984), min_size=1, max_size=60),
       max_batch=st.integers(1, 64))
def test_batcher_conserves_and_fits(lengths, max_batch):
    spec = get_model("opt-30b")
    system = get_system("spr-a100")
    config = LiaConfig()
    requests = [InferenceRequest(1, length, 32) for length in lengths]
    batches = pack_requests(requests, spec, system, config,
                            max_batch=max_batch)
    assert sum(b.n_members for b in batches) == len(requests)
    for batch in batches:
        assert batch.n_members <= max_batch
        assert 0.0 < batch.prompt_efficiency <= 1.0
        check_host_capacity(
            host_memory_usage(spec, batch.request, system, config),
            system)
    # Padded lengths cover every member.
    longest = max(lengths)
    assert max(b.request.input_len for b in batches) == longest


# ----------------------------------------------------------------------
# Serving simulator: FIFO, non-overlap, conservation.
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(gaps=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=12),
       input_len=st.integers(16, 512))
def test_simulator_fifo_invariants(gaps, input_len):
    spec = get_model("opt-30b")
    system = get_system("spr-a100")
    estimator = LiaEstimator(spec, system,
                             LiaConfig(enforce_host_capacity=False))
    simulator = ServingSimulator(estimator)
    arrivals = list(np.cumsum(gaps))
    requests = [InferenceRequest(1, input_len, 8) for __ in gaps]
    report = simulator.run(requests, arrivals)
    served = report.served
    # FIFO: starts are ordered; the server never overlaps requests.
    for earlier, later in zip(served, served[1:]):
        assert later.start >= earlier.finish - 1e-9
    for record in served:
        assert record.start >= record.arrival
        assert record.service_time > 0.0
    assert 0.0 < report.utilization <= 1.0


# ----------------------------------------------------------------------
# Estimator: throughput is monotone in batch size until capacity-ish
# regions, and latency monotone in every request dimension.
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(batch=st.integers(1, 1024), input_len=st.integers(16, 1024),
       output_len=st.integers(1, 64))
@example(batch=596, input_len=16, output_len=1)
@example(batch=625, input_len=512, output_len=64)
def test_estimator_latency_monotone_in_request(batch, input_len,
                                               output_len):
    spec = get_model("opt-30b")
    system = get_system("spr-a100")
    estimator = LiaEstimator(spec, system,
                             LiaConfig(enforce_host_capacity=False))
    base = estimator.estimate(
        InferenceRequest(batch, input_len, output_len))
    more_tokens = estimator.estimate(
        InferenceRequest(batch, input_len, output_len + 1))
    longer_prompt = estimator.estimate(
        InferenceRequest(batch, input_len + 64, output_len))
    bigger_batch = estimator.estimate(
        InferenceRequest(batch + 16, input_len, output_len))
    assert more_tokens.latency >= base.latency
    assert longer_prompt.latency >= base.latency * 0.999
    # Latency is NOT monotone in batch: a larger batch can cross an
    # Eq. (1) policy-search boundary and unlock a better offload
    # split (up to ~19% lower latency at e.g. batch 609 -> 625,
    # L_in=512).  The monotone quantity is throughput — more requests
    # never make the batch *less* efficient (small dips at the same
    # boundaries, hence the 5% envelope).
    base_tput = base.request.total_generated_tokens / base.latency
    bigger_tput = (bigger_batch.request.total_generated_tokens
                   / bigger_batch.latency)
    assert bigger_tput >= base_tput * 0.95
