"""Fault-scenario specification: validation, loading, determinism."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.faults.spec import (AdmissionPolicy, FaultEvent, FaultKind,
                               FaultScenario, RetryPolicy,
                               event_from_dict, load_scenario,
                               scenario_from_dict, scenario_to_dict)


# ----------------------------------------------------------------------
# Event validation
# ----------------------------------------------------------------------
def test_event_window_is_half_open():
    event = FaultEvent(FaultKind.PCIE_DOWNSHIFT, start=10.0,
                       duration=5.0, magnitude=0.5)
    assert not event.active_at(9.999)
    assert event.active_at(10.0)
    assert event.active_at(14.999)
    assert not event.active_at(15.0)


def test_event_defaults_to_whole_run():
    event = FaultEvent(FaultKind.PCIE_STALL, magnitude=0.1)
    assert event.active_at(0.0)
    assert event.active_at(1e12)


@pytest.mark.parametrize("kind,magnitude", [
    (FaultKind.PCIE_DOWNSHIFT, 0.0),      # scale must be > 0
    (FaultKind.PCIE_DOWNSHIFT, 1.5),
    (FaultKind.CXL_CONTENTION, -0.1),
    (FaultKind.GPU_HBM_PRESSURE, 1.0),    # fraction must be < 1
    (FaultKind.CPU_PREEMPTION, -0.01),
    (FaultKind.PCIE_STALL, 1.01),         # probability <= 1
])
def test_event_magnitude_ranges(kind, magnitude):
    with pytest.raises(ConfigurationError):
        FaultEvent(kind, magnitude=magnitude)


def test_event_rejects_negative_start_and_zero_duration():
    with pytest.raises(ConfigurationError):
        FaultEvent(FaultKind.PCIE_STALL, start=-1.0, magnitude=0.1)
    with pytest.raises(ConfigurationError):
        FaultEvent(FaultKind.PCIE_STALL, duration=0.0, magnitude=0.1)


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
def test_backoff_schedule_is_exponential():
    retry = RetryPolicy(backoff_base_s=0.01, backoff_factor=2.0)
    assert retry.backoff_delay(0) == pytest.approx(0.01)
    assert retry.backoff_delay(1) == pytest.approx(0.02)
    assert retry.backoff_delay(3) == pytest.approx(0.08)
    with pytest.raises(ConfigurationError):
        retry.backoff_delay(-1)


def test_retry_policy_validation():
    with pytest.raises(ConfigurationError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ConfigurationError):
        RetryPolicy(backoff_factor=0.5)


def test_admission_disabled_at_zero_depth():
    assert not AdmissionPolicy().enabled
    assert AdmissionPolicy(max_queue_depth=4).enabled
    with pytest.raises(ConfigurationError):
        AdmissionPolicy(max_queue_depth=-1)


# ----------------------------------------------------------------------
# Scenario
# ----------------------------------------------------------------------
def test_idle_means_no_events_and_no_admission():
    assert FaultScenario(name="nothing").idle
    assert not FaultScenario(events=(
        FaultEvent(FaultKind.PCIE_STALL, magnitude=0.1),)).idle
    assert not FaultScenario(
        admission=AdmissionPolicy(max_queue_depth=2)).idle


def test_rng_for_is_deterministic_and_independent():
    scenario = FaultScenario(seed=42)
    a1 = [scenario.rng_for(7).random() for __ in range(3)]
    a2 = [scenario.rng_for(7).random() for __ in range(3)]
    assert a1 == a2
    assert scenario.rng_for(7).random() != scenario.rng_for(8).random()
    # Different seeds give different streams for the same index.
    assert (FaultScenario(seed=1).rng_for(0).random()
            != FaultScenario(seed=2).rng_for(0).random())
    with pytest.raises(ConfigurationError):
        scenario.rng_for(-1)


# ----------------------------------------------------------------------
# Dict / file loading
# ----------------------------------------------------------------------
def test_dict_round_trip():
    scenario = FaultScenario(
        name="rt", seed=9,
        events=(FaultEvent(FaultKind.PCIE_DOWNSHIFT, start=5.0,
                           duration=60.0, magnitude=0.5),
                FaultEvent(FaultKind.PCIE_STALL, magnitude=0.02)),
        retry=RetryPolicy(max_retries=2, timeout_s=0.1),
        admission=AdmissionPolicy(max_queue_depth=8, max_deferrals=2),
        chunks_per_request=4)
    assert scenario_from_dict(scenario_to_dict(scenario)) == scenario


@pytest.mark.parametrize("data,fragment", [
    ({"kind": "melting"}, "unknown fault kind"),
    ({"kind": "pcie-stall", "oops": 1}, "unknown keys"),
    ({"kind": "pcie-stall", "magnitude": "high"}, "must be a number"),
])
def test_event_from_dict_errors(data, fragment):
    with pytest.raises(ConfigurationError, match=fragment):
        event_from_dict(data)


def test_scenario_from_dict_errors():
    with pytest.raises(ConfigurationError, match="unknown keys"):
        scenario_from_dict({"name": "x", "typo": 1})
    with pytest.raises(ConfigurationError, match="must be an integer"):
        scenario_from_dict({"seed": 1.5})
    with pytest.raises(ConfigurationError, match="must be a list"):
        scenario_from_dict({"events": "pcie-stall"})


def test_load_scenario_json(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps({
        "name": "from-file", "seed": 3,
        "events": [{"kind": "cxl-contention", "magnitude": 0.7}]}))
    scenario = load_scenario(str(path))
    assert scenario.name == "from-file"
    assert scenario.events[0].kind is FaultKind.CXL_CONTENTION


def test_load_scenario_error_is_one_line(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(ConfigurationError, match="not valid JSON"):
        load_scenario(str(path))
    with pytest.raises(ConfigurationError, match="cannot read"):
        load_scenario(str(tmp_path / "missing.json"))


def test_load_scenario_yaml(tmp_path):
    yaml = pytest.importorskip("yaml")
    path = tmp_path / "spec.yaml"
    path.write_text(yaml.safe_dump({
        "name": "from-yaml",
        "events": [{"kind": "pcie-downshift", "magnitude": 0.5}]}))
    assert load_scenario(str(path)).name == "from-yaml"
