"""Engine transfer-fault accounting: invariance and determinism."""

import numpy as np
import pytest

from repro.core.policy import OffloadPolicy
from repro.faults.engine import TransferFaultModel
from repro.faults.scenarios import get_scenario
from repro.faults.spec import FaultEvent, FaultKind, FaultScenario
from repro.inference.engine import CooperativeEngine
from repro.inference.transformer import TinyTransformer
from repro.telemetry.runtime import Telemetry, activate


@pytest.fixture
def model(tiny_spec):
    return TinyTransformer(tiny_spec, seed=0)


def _generate(model, fault_model=None, telemetry=None):
    engine = CooperativeEngine(
        model, OffloadPolicy.from_string("101010"),
        OffloadPolicy.from_string("010101"),
        telemetry=telemetry, fault_model=fault_model)
    prompt = (np.arange(6) % model.spec.vocab_size)[None, :]
    return engine.generate(prompt, max_new_tokens=3)


def test_idle_fault_model_is_invisible(model):
    base = _generate(model)
    idle = _generate(model, TransferFaultModel(
        FaultScenario(name="idle", seed=5)))
    assert np.array_equal(base.tokens, idle.tokens)
    assert base.pcie_bytes == idle.pcie_bytes
    assert len(base.transfers.records) == len(idle.transfers.records)


def test_faults_never_touch_tokens_or_traffic(model):
    base = _generate(model)
    fault_model = TransferFaultModel(get_scenario("pcie-flaky"))
    faulty = _generate(model, fault_model)
    assert np.array_equal(base.tokens, faulty.tokens)
    assert base.pcie_bytes == faulty.pcie_bytes
    assert fault_model.stalls > 0   # seed 2 at p=0.03 over ~100 xfers


def test_fault_draws_are_deterministic(model):
    first = TransferFaultModel(get_scenario("pcie-flaky"))
    second = TransferFaultModel(get_scenario("pcie-flaky"))
    _generate(model, first)
    _generate(model, second)
    assert (first.stalls, first.retries, first.failures) == (
        second.stalls, second.retries, second.failures)


def test_fault_model_emits_counters_and_retry_spans(model):
    telemetry = Telemetry()
    fault_model = TransferFaultModel(get_scenario("pcie-flaky"))
    with activate(telemetry):
        _generate(model, fault_model, telemetry=telemetry)
    metrics = {sample["metric"]: sample["value"]
               for sample in telemetry.metrics.snapshot()}
    assert metrics.get("faults.engine.stalls", 0) == fault_model.stalls
    retry_spans = [sp for sp in telemetry.tracer.spans
                   if sp.track == "faults"]
    assert len(retry_spans) == fault_model.retries
    assert all(sp.name.startswith("retry:") for sp in retry_spans)


def test_stall_probability_composition():
    scenario = FaultScenario(
        name="double", seed=0,
        events=(FaultEvent(FaultKind.PCIE_STALL, magnitude=0.5),
                FaultEvent(FaultKind.PCIE_STALL, magnitude=0.5)))
    assert TransferFaultModel(scenario).probability == pytest.approx(0.75)
    assert TransferFaultModel(
        FaultScenario(name="calm", seed=0)).idle
