"""Fault injector: degraded hardware copies and deterministic draws."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector, apply_faults
from repro.faults.scenarios import builtin_scenarios, get_scenario
from repro.faults.spec import FaultEvent, FaultKind, FaultScenario
from repro.hardware.system import get_system


def _scenario(*events):
    return FaultScenario(name="test", seed=5, events=tuple(events))


# ----------------------------------------------------------------------
# Scalar factors
# ----------------------------------------------------------------------
def test_factors_compose_only_inside_windows():
    injector = FaultInjector(_scenario(
        FaultEvent(FaultKind.PCIE_DOWNSHIFT, start=10.0, duration=10.0,
                   magnitude=0.5),
        FaultEvent(FaultKind.PCIE_DOWNSHIFT, start=15.0, duration=10.0,
                   magnitude=0.8)))
    assert injector.link_scale(0.0) == 1.0
    assert injector.link_scale(12.0) == pytest.approx(0.5)
    assert injector.link_scale(17.0) == pytest.approx(0.4)   # overlap
    assert injector.link_scale(22.0) == pytest.approx(0.8)
    assert injector.link_scale(30.0) == 1.0


def test_stall_probability_composes_independently():
    injector = FaultInjector(_scenario(
        FaultEvent(FaultKind.PCIE_STALL, magnitude=0.5),
        FaultEvent(FaultKind.PCIE_STALL, magnitude=0.5)))
    assert injector.stall_probability(0.0) == pytest.approx(0.75)


def test_cpu_loss_and_gpu_reservation_compose():
    injector = FaultInjector(_scenario(
        FaultEvent(FaultKind.CPU_PREEMPTION, magnitude=0.5),
        FaultEvent(FaultKind.CPU_PREEMPTION, magnitude=0.5),
        FaultEvent(FaultKind.GPU_HBM_PRESSURE, magnitude=0.25)))
    assert injector.cpu_loss(0.0) == pytest.approx(0.75)
    assert injector.gpu_reserved_fraction(0.0) == pytest.approx(0.25)


# ----------------------------------------------------------------------
# Degraded systems
# ----------------------------------------------------------------------
def test_degraded_system_is_same_object_when_quiet():
    system = get_system("spr-a100")
    injector = FaultInjector(_scenario(
        FaultEvent(FaultKind.PCIE_DOWNSHIFT, start=100.0, duration=10.0,
                   magnitude=0.5)))
    assert injector.degraded_system(system, 0.0) is system


def test_degraded_system_memoizes_per_signature():
    system = get_system("spr-a100")
    injector = FaultInjector(_scenario(
        FaultEvent(FaultKind.PCIE_DOWNSHIFT, duration=100.0,
                   magnitude=0.5)))
    first = injector.degraded_system(system, 1.0)
    second = injector.degraded_system(system, 2.0)
    assert first is second
    assert first is not system
    assert first.host_link.bandwidth == pytest.approx(
        system.host_link.bandwidth * 0.5)


def test_apply_faults_touches_only_requested_subsystems():
    system = get_system("spr-a100").with_cxl(n_expanders=2)
    degraded = apply_faults(system, link_scale=0.5, cxl_scale=0.6,
                            cpu_loss=0.25, gpu_reserved=0.4)
    assert degraded.host_link.bandwidth == pytest.approx(
        system.host_link.bandwidth * 0.5)
    for base, hit in zip(system.cxl_devices, degraded.cxl_devices):
        assert hit.bandwidth == pytest.approx(base.bandwidth * 0.6)
    assert degraded.gpu.memory.capacity_bytes == pytest.approx(
        system.gpu.memory.capacity_bytes * 0.6)
    amx = degraded.cpu.engines["amx"]
    assert amx.peak_flops == pytest.approx(
        system.cpu.engines["amx"].peak_flops * 0.75)
    assert "!" in degraded.name
    # Untouched factors leave the original objects in place.
    same = apply_faults(system)
    assert same is system


def test_apply_faults_validates_ranges():
    system = get_system("spr-a100")
    with pytest.raises(ConfigurationError):
        apply_faults(system, link_scale=0.0)
    with pytest.raises(ConfigurationError):
        apply_faults(system, gpu_reserved=1.0)


# ----------------------------------------------------------------------
# Deterministic draws
# ----------------------------------------------------------------------
def test_chunk_stalls_deterministic_and_seed_sensitive():
    event = FaultEvent(FaultKind.PCIE_STALL, magnitude=0.3)
    a = FaultInjector(FaultScenario(seed=1, events=(event,)))
    b = FaultInjector(FaultScenario(seed=1, events=(event,)))
    c = FaultInjector(FaultScenario(seed=2, events=(event,)))
    draws_a = [a.chunk_stalls(0.0, i, 40) for i in range(6)]
    draws_b = [b.chunk_stalls(0.0, i, 40) for i in range(6)]
    draws_c = [c.chunk_stalls(0.0, i, 40) for i in range(6)]
    assert draws_a == draws_b
    assert draws_a != draws_c
    assert all(s == tuple(sorted(set(s))) for s in draws_a)


def test_chunk_stalls_empty_without_probability():
    injector = FaultInjector(_scenario())
    assert injector.chunk_stalls(0.0, 0, 100) == ()
    with pytest.raises(ConfigurationError):
        injector.chunk_stalls(0.0, 0, -1)


def test_retry_succeeds_deterministic():
    injector = FaultInjector(_scenario(
        FaultEvent(FaultKind.PCIE_STALL, magnitude=0.4)))
    outcomes = [injector.retry_succeeds(3, chunk, attempt, 0.0)
                for chunk in range(4) for attempt in range(3)]
    again = [injector.retry_succeeds(3, chunk, attempt, 0.0)
             for chunk in range(4) for attempt in range(3)]
    assert outcomes == again
    # Stall probability zero -> always succeeds, no draws needed.
    calm = FaultInjector(_scenario())
    assert calm.retry_succeeds(0, 0, 0, 0.0)


# ----------------------------------------------------------------------
# Presets
# ----------------------------------------------------------------------
def test_builtin_scenarios_are_valid_and_named():
    scenarios = builtin_scenarios()
    assert len(scenarios) >= 5
    for name, scenario in scenarios.items():
        assert scenario.name == name
        assert not scenario.idle


def test_get_scenario_unknown_is_one_line():
    with pytest.raises(ConfigurationError, match="known scenarios"):
        get_scenario("nope")
