"""Fault-injection layer tests."""
