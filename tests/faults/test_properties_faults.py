"""Property-based tests (hypothesis) on fault-layer invariants.

The two contract-level properties the robustness layer promises:

* an enabled-but-idle fault layer is bit-identical to no fault layer;
* a seeded fault scenario is deterministic — across repeat runs and
  across any ``REPRO_SWEEP_WORKERS`` setting.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import LiaConfig
from repro.core.estimator import LiaEstimator
from repro.faults.spec import (AdmissionPolicy, FaultEvent, FaultKind,
                               FaultScenario, RetryPolicy)
from repro.models.workload import InferenceRequest
from repro.models.zoo import get_model
from repro.serving.simulator import ServingSimulator

CONFIG = LiaConfig(enforce_host_capacity=False)

_REQUESTS = [InferenceRequest(4, 256, 32)] * 6


def _simulator():
    from repro.hardware.system import get_system

    return ServingSimulator(
        LiaEstimator(get_model("opt-30b"), get_system("spr-a100"),
                     CONFIG))


def _timeline(report):
    return [(s.arrival, s.start, s.finish) for s in report.served]


# Bounded magnitudes per kind so every generated event validates.
_events = st.one_of(
    st.builds(FaultEvent,
              kind=st.just(FaultKind.PCIE_DOWNSHIFT),
              start=st.floats(0.0, 200.0),
              duration=st.floats(1.0, 500.0),
              magnitude=st.floats(0.25, 1.0, exclude_min=False)),
    st.builds(FaultEvent,
              kind=st.just(FaultKind.CXL_CONTENTION),
              start=st.floats(0.0, 200.0),
              duration=st.floats(1.0, 500.0),
              magnitude=st.floats(0.25, 1.0)),
    st.builds(FaultEvent,
              kind=st.just(FaultKind.CPU_PREEMPTION),
              start=st.floats(0.0, 200.0),
              duration=st.floats(1.0, 500.0),
              magnitude=st.floats(0.0, 0.6)),
    st.builds(FaultEvent,
              kind=st.just(FaultKind.GPU_HBM_PRESSURE),
              start=st.floats(0.0, 200.0),
              duration=st.floats(1.0, 500.0),
              magnitude=st.floats(0.0, 0.5)),
    st.builds(FaultEvent,
              kind=st.just(FaultKind.PCIE_STALL),
              start=st.floats(0.0, 200.0),
              duration=st.floats(1.0, 500.0),
              magnitude=st.floats(0.0, 0.3)),
)

_scenarios = st.builds(
    FaultScenario,
    name=st.just("generated"),
    seed=st.integers(0, 2 ** 16),
    events=st.lists(_events, min_size=1, max_size=4).map(tuple),
    retry=st.builds(RetryPolicy,
                    max_retries=st.integers(0, 3),
                    timeout_s=st.floats(0.0, 0.2),
                    backoff_base_s=st.floats(0.0, 0.05),
                    backoff_factor=st.floats(1.0, 3.0)),
    admission=st.builds(AdmissionPolicy,
                        max_queue_depth=st.integers(0, 8),
                        max_deferrals=st.integers(0, 3)))


# ----------------------------------------------------------------------
# Pure-spec properties (cheap, many examples)
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(start=st.floats(0.0, 1e6), duration=st.floats(1e-6, 1e6),
       probe=st.floats(0.0, 2e6))
def test_fault_window_is_half_open(start, duration, probe):
    event = FaultEvent(FaultKind.PCIE_STALL, start=start,
                       duration=duration, magnitude=0.1)
    assert event.active_at(probe) == (start <= probe < start + duration)


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(0, 2 ** 32), index=st.integers(0, 2 ** 16))
def test_rng_streams_are_reproducible(seed, index):
    scenario = FaultScenario(seed=seed)
    assert (scenario.rng_for(index).random()
            == scenario.rng_for(index).random())


@settings(max_examples=100, deadline=None)
@given(base=st.floats(1e-6, 1.0), factor=st.floats(1.0, 4.0),
       attempts=st.integers(1, 8))
def test_backoff_is_monotonically_non_decreasing(base, factor, attempts):
    retry = RetryPolicy(backoff_base_s=base, backoff_factor=factor)
    delays = [retry.backoff_delay(k) for k in range(attempts)]
    assert delays == sorted(delays)


# ----------------------------------------------------------------------
# Simulation properties (estimator-backed: few, heavier examples)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def simulator():
    return _simulator()


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2 ** 16))
def test_enabled_but_idle_layer_is_bit_identical(simulator, seed):
    """Any idle scenario — whatever its seed or retry knobs — leaves
    the timeline untouched, bit for bit."""
    idle = FaultScenario(name="idle", seed=seed,
                         retry=RetryPolicy(max_retries=seed % 4))
    assert idle.idle
    base = simulator.run_poisson(_REQUESTS, 0.05, seed=1)
    layered = simulator.run_poisson(_REQUESTS, 0.05, seed=1,
                                    scenario=idle)
    assert _timeline(base) == _timeline(layered)


@settings(max_examples=8, deadline=None)
@given(scenario=_scenarios)
def test_seeded_scenarios_deterministic_across_workers(simulator,
                                                       scenario):
    """The same scenario yields the same report under any
    ``REPRO_SWEEP_WORKERS`` setting: fault draws key off (seed,
    request index), never off scheduling order."""
    saved = os.environ.get("REPRO_SWEEP_WORKERS")
    results = []
    try:
        for workers in ("1", "3"):
            os.environ["REPRO_SWEEP_WORKERS"] = workers
            report = simulator.run_poisson(_REQUESTS, 0.05, seed=2,
                                           scenario=scenario)
            dropped = [(d.arrival, d.reason)
                       for d in getattr(report, "dropped", [])]
            stats = getattr(report, "stats", None)
            results.append((_timeline(report), dropped,
                            stats.as_dict() if stats else None))
    finally:
        if saved is None:
            os.environ.pop("REPRO_SWEEP_WORKERS", None)
        else:
            os.environ["REPRO_SWEEP_WORKERS"] = saved
    assert results[0] == results[1]
