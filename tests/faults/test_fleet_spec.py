"""Fleet-chaos specs: validation, semantics, round-trips, presets.

Mirrors ``tests/faults/test_spec.py`` for the fleet surface: every
malformed spec dies at construction with a one-line
:class:`ConfigurationError`, dicts round-trip exactly, and the
built-in scenarios stay loadable by name.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.faults.fleet import (FleetScenario, HealthPolicy,
                                RedispatchPolicy, ReplicaFault,
                                ReplicaFaultKind,
                                builtin_fleet_scenarios,
                                fleet_from_dict, fleet_to_dict,
                                get_fleet_scenario,
                                load_fleet_scenario,
                                replica_fault_from_dict)


def _one_line(error: pytest.ExceptionInfo) -> str:
    message = str(error.value)
    assert "\n" not in message, message
    return message


def _crash(**kwargs):
    kwargs.setdefault("replica", 0)
    return ReplicaFault(ReplicaFaultKind.REPLICA_CRASH, **kwargs)


# ----------------------------------------------------------------------
# ReplicaFault validation and window semantics
# ----------------------------------------------------------------------
@pytest.mark.parametrize("build, fragment", [
    (lambda: _crash(replica=-1), "replica must be an integer >= 0"),
    (lambda: _crash(replica=True), "replica must be an integer >= 0"),
    (lambda: _crash(start=-1.0), "start must be >= 0"),
    (lambda: _crash(duration=0.0), "duration must be positive"),
    (lambda: _crash(magnitude=2.0), "replica-crash takes no magnitude"),
    (lambda: _crash(warmup_s=-1.0), "warmup_s must be >= 0"),
    (lambda: _crash(start=0.0, duration=10.0, warmup_s=5.0),
     "warmup_s only applies to replica-restart"),
    (lambda: ReplicaFault(ReplicaFaultKind.REPLICA_SLOW, replica=0,
                          magnitude=1.0),
     "replica-slow magnitude is a slowdown factor"),
    (lambda: ReplicaFault(ReplicaFaultKind.REPLICA_RESTART, replica=0,
                          magnitude=0.5),
     "replica-restart magnitude is the warm-up"),
])
def test_replica_fault_validation(build, fragment):
    with pytest.raises(ConfigurationError) as error:
        build()
    assert fragment in _one_line(error)


def test_crash_window_semantics():
    fault = _crash(replica=1, start=100.0, duration=50.0)
    assert fault.end == 150.0
    assert not fault.down_at(99.9)
    assert fault.down_at(100.0)
    assert fault.down_at(149.9)
    assert not fault.down_at(150.0)
    assert fault.slow_factor_at(120.0) == 1.0


def test_slow_window_semantics():
    fault = ReplicaFault(ReplicaFaultKind.REPLICA_SLOW, replica=0,
                         start=10.0, duration=20.0, magnitude=4.0)
    # Gray failure: the replica still answers (never "down"), just
    # slowly while the window is active.
    assert not fault.down_at(15.0)
    assert fault.slow_factor_at(9.9) == 1.0
    assert fault.slow_factor_at(10.0) == 4.0
    assert fault.slow_factor_at(29.9) == 4.0
    assert fault.slow_factor_at(30.0) == 1.0


def test_restart_downtime_then_warmup():
    fault = ReplicaFault(ReplicaFaultKind.REPLICA_RESTART, replica=2,
                         start=100.0, duration=60.0, magnitude=2.0,
                         warmup_s=120.0)
    assert fault.down_at(100.0) and fault.down_at(159.9)
    assert not fault.down_at(160.0)
    assert fault.slow_factor_at(160.0) == 2.0
    assert fault.slow_factor_at(279.9) == 2.0
    assert fault.slow_factor_at(280.0) == 1.0
    assert fault.slow_factor_at(99.0) == 1.0


# ----------------------------------------------------------------------
# Policy validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("build, fragment", [
    (lambda: HealthPolicy(failure_threshold=0),
     "failure_threshold must be >= 1"),
    (lambda: HealthPolicy(cooldown_s=0.0),
     "cooldown_s must be positive"),
    (lambda: HealthPolicy(half_open_probes=0),
     "half_open_probes must be >= 1"),
    (lambda: HealthPolicy(slow_tolerance=1.0),
     "slow_tolerance must be > 1"),
    (lambda: RedispatchPolicy(max_retries=-1),
     "max_retries must be >= 0"),
    (lambda: RedispatchPolicy(hedge_after_s=-0.1),
     "hedge_after_s must be >= 0"),
    (lambda: FleetScenario(seed=-1), "seed must be >= 0"),
])
def test_policy_validation(build, fragment):
    with pytest.raises(ConfigurationError) as error:
        build()
    assert fragment in _one_line(error)


def test_hedging_flag():
    assert not RedispatchPolicy().hedging
    assert RedispatchPolicy(hedge_after_s=5.0).hedging


def test_idle_means_no_faults_and_no_hedging():
    assert FleetScenario().idle
    assert not FleetScenario(faults=(_crash(),)).idle
    assert not FleetScenario(
        redispatch=RedispatchPolicy(hedge_after_s=1.0)).idle


def test_faults_for_filters_and_sorts_by_start():
    late = _crash(replica=1, start=500.0, duration=10.0)
    early = ReplicaFault(ReplicaFaultKind.REPLICA_SLOW, replica=1,
                         start=100.0, duration=10.0, magnitude=2.0)
    other = _crash(replica=0, start=0.0, duration=10.0)
    scenario = FleetScenario(faults=(late, other, early))
    assert scenario.faults_for(1) == (early, late)
    assert scenario.faults_for(0) == (other,)
    assert scenario.faults_for(7) == ()


# ----------------------------------------------------------------------
# Dict / file surface
# ----------------------------------------------------------------------
def test_every_builtin_scenario_round_trips_exactly():
    scenarios = builtin_fleet_scenarios()
    assert list(scenarios) == sorted(scenarios)
    for name, scenario in scenarios.items():
        assert scenario.name == name
        assert fleet_from_dict(fleet_to_dict(scenario)) == scenario


def test_round_trip_preserves_custom_scenario():
    scenario = FleetScenario(
        name="custom", seed=9,
        faults=(
            ReplicaFault(ReplicaFaultKind.REPLICA_RESTART, replica=3,
                         start=60.0, duration=30.0, magnitude=2.5,
                         warmup_s=90.0),
        ),
        health=HealthPolicy(failure_threshold=5, cooldown_s=45.0,
                            half_open_probes=2, slow_tolerance=2.5),
        redispatch=RedispatchPolicy(max_retries=4, hedge_after_s=3.0))
    assert fleet_from_dict(fleet_to_dict(scenario)) == scenario


@pytest.mark.parametrize("data, fragment", [
    ("nope", "fleet scenario must be a mapping"),
    ({"surprise": 1}, "unknown keys ['surprise']"),
    ({"name": 4}, "name must be a string"),
    ({"seed": 1.5}, "seed must be an integer"),
    ({"faults": "crash"}, "faults must be a list"),
    ({"faults": [{"kind": "meteor"}]}, "unknown replica fault kind"),
    ({"faults": [{"kind": "replica-crash", "vigor": 2}]},
     "unknown keys ['vigor']"),
    ({"faults": [{"kind": "replica-crash", "replica": "one"}]},
     "replica must be an integer"),
    ({"health": {"cooldown_s": "long"}}, "cooldown_s must be a number"),
    ({"health": {"zeal": 3}}, "unknown keys ['zeal']"),
    ({"health": 7}, "fleet scenario.health must be a mapping"),
    ({"redispatch": {"max_retries": 0.5}},
     "max_retries must be an integer"),
    ({"redispatch": {"panic": True}}, "unknown keys ['panic']"),
])
def test_fleet_from_dict_rejects_malformed_specs(data, fragment):
    with pytest.raises(ConfigurationError) as error:
        fleet_from_dict(data)
    assert fragment in _one_line(error)


def test_replica_fault_from_dict_unknown_kind_lists_known():
    with pytest.raises(ConfigurationError) as error:
        replica_fault_from_dict({"kind": "meteor"})
    message = _one_line(error)
    assert "replica-crash" in message
    assert "replica-slow" in message
    assert "replica-restart" in message


def test_load_fleet_scenario_json_round_trip(tmp_path):
    scenario = get_fleet_scenario("bursty-chaos")
    path = tmp_path / "chaos.json"
    path.write_text(json.dumps(fleet_to_dict(scenario)))
    assert load_fleet_scenario(str(path)) == scenario


def test_load_fleet_scenario_missing_file_is_one_line(tmp_path):
    with pytest.raises(ConfigurationError) as error:
        load_fleet_scenario(str(tmp_path / "absent.json"))
    assert "cannot read fleet scenario" in _one_line(error)


def test_load_fleet_scenario_invalid_json_is_one_line(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("[")
    with pytest.raises(ConfigurationError) as error:
        load_fleet_scenario(str(path))
    assert "not valid JSON" in _one_line(error)


def test_get_fleet_scenario_unknown_is_one_line():
    with pytest.raises(ConfigurationError) as error:
        get_fleet_scenario("volcano")
    message = _one_line(error)
    assert "unknown fleet scenario 'volcano'" in message
    assert "replica-crash" in message
