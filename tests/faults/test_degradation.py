"""Degraded serving: bit-identity, reactions, and determinism."""

from dataclasses import replace

import pytest

from repro.core.config import LiaConfig
from repro.core.estimator import LiaEstimator
from repro.faults.scenarios import get_scenario
from repro.faults.spec import (AdmissionPolicy, FaultEvent, FaultKind,
                               FaultScenario, RetryPolicy)
from repro.models.workload import InferenceRequest
from repro.models.zoo import get_model
from repro.serving.batcher import pack_requests, repack_under_pressure
from repro.serving.degradation import DegradedServingReport
from repro.serving.planner import choose_system
from repro.serving.simulator import ServingSimulator
from repro.telemetry.runtime import Telemetry, activate


@pytest.fixture
def simulator(opt_30b, spr_a100, eval_config):
    return ServingSimulator(LiaEstimator(opt_30b, spr_a100, eval_config))


def _timeline(report):
    return [(s.arrival, s.start, s.finish) for s in report.served]


REQUESTS = [InferenceRequest(8, 512, 64)] * 10


# ----------------------------------------------------------------------
# Bit-identity of the idle fault layer
# ----------------------------------------------------------------------
def test_idle_scenario_is_bit_identical(simulator):
    base = simulator.run_poisson(REQUESTS, 0.05, seed=3)
    idle = simulator.run_poisson(
        REQUESTS, 0.05, seed=3,
        scenario=FaultScenario(name="armed-but-idle", seed=99))
    assert _timeline(base) == _timeline(idle)
    assert type(idle) is type(base)   # plain report, no degraded shell


def test_windowed_faults_leave_quiet_periods_untouched(simulator):
    """Requests served before the fault window keep exact base timing."""
    arrivals = [float(i) * 2.0 for i in range(10)]
    base = simulator.run(REQUESTS, arrivals)
    window_start = base.served[4].finish + 1.0
    scenario = FaultScenario(
        name="late-downshift", seed=1,
        events=(FaultEvent(FaultKind.PCIE_DOWNSHIFT,
                           start=window_start, duration=1e6,
                           magnitude=0.25),))
    degraded = simulator.run(REQUESTS, arrivals, scenario=scenario)
    assert isinstance(degraded, DegradedServingReport)
    # Before the window: bit-identical starts and finishes.
    for before, after in zip(_timeline(base)[:4], _timeline(degraded)[:4]):
        assert before == after
    # Inside the window the link is 4x slower: strictly later finishes.
    assert degraded.served[-1].finish > base.served[-1].finish
    assert degraded.stats.policy_resolves > 0


# ----------------------------------------------------------------------
# Reactions
# ----------------------------------------------------------------------
def test_pcie_stalls_charge_retry_penalties(simulator):
    scenario = FaultScenario(
        name="flaky", seed=2,
        events=(FaultEvent(FaultKind.PCIE_STALL, magnitude=0.2),),
        retry=RetryPolicy(max_retries=2, timeout_s=0.5,
                          backoff_base_s=0.25))
    arrivals = [float(i) * 100.0 for i in range(10)]
    base = simulator.run(REQUESTS, arrivals)
    degraded = simulator.run(REQUESTS, arrivals, scenario=scenario)
    assert degraded.stats.transfer_stalls > 0
    assert degraded.stats.stall_seconds > 0.0
    penalties = [after.finish - before.finish
                 for before, after in zip(base.served, degraded.served)]
    assert all(p >= 0.0 for p in penalties)
    assert max(p for p in penalties) > 0.0
    # Still degraded-but-bounded: every request finished.
    assert len(degraded.served) == len(REQUESTS)


def test_admission_control_defers_and_sheds(simulator):
    scenario = FaultScenario(
        name="backpressure", seed=3,
        admission=AdmissionPolicy(max_queue_depth=1, max_deferrals=1),
        retry=RetryPolicy(backoff_base_s=0.001))
    arrivals = [0.0] * 10   # everyone at once against depth 1
    report = simulator.run(REQUESTS, arrivals, scenario=scenario)
    assert report.dropped, "burst against depth-1 queue must shed"
    assert report.stats.deferred > 0
    assert report.n_offered == len(REQUESTS)
    assert 0.0 < report.drop_rate < 1.0 or report.drop_rate == 1.0
    for drop in report.dropped:
        assert "admission" in drop.reason


def test_gpu_pressure_forces_policy_resolve(simulator):
    scenario = get_scenario("gpu-pressure")
    arrivals = [15.0 + i for i in range(10)]   # inside the window
    degraded = simulator.run(REQUESTS, arrivals, scenario=scenario)
    assert degraded.stats.policy_resolves > 0
    assert degraded.stats.degraded_requests > 0


def test_fully_shed_run_is_reportable(simulator):
    scenario = FaultScenario(
        name="slammed", seed=4,
        admission=AdmissionPolicy(max_queue_depth=1, max_deferrals=0))
    requests = [InferenceRequest(8, 512, 64)] * 3
    # First request admitted (empty queue), rest shed while it runs.
    report = simulator.run(requests, [0.0, 0.0, 0.0], scenario=scenario)
    assert len(report.served) + len(report.dropped) == 3
    assert report.dropped
    assert report.mean_queue_delay >= 0.0
    assert report.makespan >= 0.0


# ----------------------------------------------------------------------
# Telemetry
# ----------------------------------------------------------------------
def test_degraded_run_emits_fault_counters_and_spans(simulator):
    telemetry = Telemetry()
    scenario = get_scenario("noisy-neighbor")
    with activate(telemetry):
        simulator.run_poisson(REQUESTS, 0.05, seed=7, scenario=scenario)
    metrics = {sample["metric"] for sample in
               telemetry.metrics.snapshot()}
    assert any(name.startswith("faults.") for name in metrics)
    assert {sp.track for sp in telemetry.tracer.spans} >= {"server",
                                                           "faults"}


# ----------------------------------------------------------------------
# Determinism across worker counts
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", ["1", "4"])
def test_degraded_runs_identical_across_sweep_workers(
        simulator, monkeypatch, workers):
    monkeypatch.setenv("REPRO_SWEEP_WORKERS", workers)
    scenario = get_scenario("noisy-neighbor")
    report = simulator.run_poisson(REQUESTS, 0.05, seed=7,
                                   scenario=scenario)
    # Compare against a fixed single-worker reference computed fresh.
    monkeypatch.setenv("REPRO_SWEEP_WORKERS", "1")
    reference = simulator.run_poisson(REQUESTS, 0.05, seed=7,
                                      scenario=scenario)
    assert _timeline(report) == _timeline(reference)
    assert report.stats.as_dict() == reference.stats.as_dict()


# ----------------------------------------------------------------------
# Planner and batcher integration
# ----------------------------------------------------------------------
def test_planner_ranks_under_fault_scenario(opt_30b):
    requests = [InferenceRequest(1, 128, 16)] * 4
    choices = choose_system(opt_30b, requests, slo_p95_seconds=1e6,
                            candidates=("spr-a100", "spr-h100"),
                            scenario=get_scenario("pcie-downshift"))
    assert len(choices) == 2
    assert any(c.feasible for c in choices)


def test_repack_under_pressure_passthrough_and_split(opt_30b,
                                                     spr_a100,
                                                     eval_config):
    singles = [InferenceRequest(1, 256, 32) for __ in range(16)]
    batches = pack_requests(singles, opt_30b, spr_a100, eval_config,
                            max_batch=16)
    # Undisturbed platform: the exact same packing comes back.
    assert repack_under_pressure(batches, opt_30b, spr_a100,
                                 eval_config) == batches
    # Shrink host DDR to just under the B=16 footprint, so whole
    # batches overflow but halves still fit.
    from repro.core.estimator import host_memory_usage
    footprint = host_memory_usage(opt_30b, batches[0].request,
                                  spr_a100, eval_config).ddr_bytes
    fraction = 1.0 - 0.999 * footprint / spr_a100.cpu.memory.capacity_bytes
    squeezed = replace(
        spr_a100,
        cpu=replace(spr_a100.cpu,
                    memory=spr_a100.cpu.memory.with_reserved_fraction(
                        fraction)))
    repacked = repack_under_pressure(batches, opt_30b, squeezed,
                                     eval_config)
    assert sum(b.n_members for b in repacked) == 16
    assert max(b.request.batch_size for b in repacked) < max(
        b.request.batch_size for b in batches)
