"""Workload traces: determinism, spec round-trips, one-line errors.

The contract pinned here is the one the fleet simulator leans on:
a :class:`TraceSpec` is the *complete* description of its arrival
process — two equal specs generate bit-identical arrays, on any
worker count, on every run.
"""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.serving import arrivals_poisson
from repro.workloads import (TRACE_KINDS, TraceSpec, arrivals_diurnal,
                             arrivals_heavy_tail, arrivals_mmpp,
                             builtin_traces, get_trace, load_trace,
                             session_trace, trace_from_dict,
                             trace_to_dict)


def _one_line(error: pytest.ExceptionInfo) -> str:
    message = str(error.value)
    assert "\n" not in message, message
    return message


# ----------------------------------------------------------------------
# Generator basics
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", TRACE_KINDS)
def test_generators_return_sorted_positive_float64(kind):
    trace = TraceSpec(kind=kind, n_requests=500, rate_per_s=1.0,
                      seed=3).generate()
    assert trace.dtype == np.float64
    assert trace.shape == (500,)
    assert (trace > 0.0).all()
    assert (np.diff(trace) >= 0.0).all()


@pytest.mark.parametrize("kind", TRACE_KINDS)
def test_zero_requests_is_an_empty_trace(kind):
    trace = TraceSpec(kind=kind, n_requests=0).generate()
    assert trace.shape == (0,)
    assert trace.dtype == np.float64


def test_poisson_spec_replays_arrivals_poisson_exactly():
    # The "poisson" kind is not a numpy approximation: it reproduces
    # the seed generator's stdlib-Random stream byte for byte, so a
    # spec can stand in for any historical arrivals_poisson() run.
    spec = TraceSpec(kind="poisson", n_requests=400, rate_per_s=0.7,
                     seed=11)
    assert np.array_equal(spec.generate(),
                          arrivals_poisson(400, 0.7, seed=11))


def test_diurnal_long_run_rate_matches_target():
    trace = arrivals_diurnal(4000, 2.0, amplitude=0.8,
                             period_s=600.0, seed=0)
    empirical = trace.size / float(trace[-1])
    assert empirical == pytest.approx(2.0, rel=0.25)


def test_session_trace_labels_align_with_arrivals():
    trace = session_trace(300, 1.0, turns_mean=4.0,
                          think_mean_s=10.0, seed=6)
    assert trace.n_requests == 300
    assert trace.session.shape == trace.arrivals.shape
    assert trace.turn.shape == trace.arrivals.shape
    assert trace.n_sessions > 1
    # Within one session the turn index counts 0, 1, 2, ... and the
    # arrivals advance monotonically (think times are positive).
    for sid in np.unique(trace.session):
        mask = trace.session == sid
        order = np.argsort(trace.turn[mask])
        turns = trace.turn[mask][order]
        assert turns.tolist() == list(range(turns.size))
        assert (np.diff(trace.arrivals[mask][order]) >= 0.0).all()


# ----------------------------------------------------------------------
# Determinism: equal specs, repeated runs, any worker count
# ----------------------------------------------------------------------
def test_equal_specs_generate_bit_identical_arrays():
    for kind in TRACE_KINDS:
        first = TraceSpec(kind=kind, n_requests=300, seed=9).generate()
        second = TraceSpec(kind=kind, n_requests=300, seed=9).generate()
        assert np.array_equal(first, second), kind


def test_different_seeds_generate_different_traces():
    for kind in TRACE_KINDS:
        a = TraceSpec(kind=kind, n_requests=200, seed=0).generate()
        b = TraceSpec(kind=kind, n_requests=200, seed=1).generate()
        assert not np.array_equal(a, b), kind


@settings(max_examples=8, deadline=None)
@given(kind=st.sampled_from(TRACE_KINDS), seed=st.integers(0, 2 ** 16))
def test_traces_invariant_under_sweep_worker_count(kind, seed):
    """A trace depends only on its spec, never on how many workers
    later consume it: ``REPRO_SWEEP_WORKERS`` must not leak in."""
    spec = TraceSpec(kind=kind, n_requests=200, rate_per_s=0.5,
                     seed=seed)
    saved = os.environ.get("REPRO_SWEEP_WORKERS")
    traces = []
    try:
        for workers in ("1", "4"):
            os.environ["REPRO_SWEEP_WORKERS"] = workers
            traces.append(spec.generate())
    finally:
        if saved is None:
            os.environ.pop("REPRO_SWEEP_WORKERS", None)
        else:
            os.environ["REPRO_SWEEP_WORKERS"] = saved
    assert np.array_equal(traces[0], traces[1])


def test_scaled_preserves_the_process():
    spec = get_trace("bursty")
    longer = spec.scaled(123)
    assert longer.n_requests == 123
    assert trace_to_dict(longer) == {**trace_to_dict(spec),
                                     "n_requests": 123}


# ----------------------------------------------------------------------
# Spec surface: round-trips, presets, loading
# ----------------------------------------------------------------------
def test_every_preset_round_trips_exactly():
    presets = builtin_traces()
    assert list(presets) == sorted(presets)
    for name, spec in presets.items():
        assert spec.name == name
        assert trace_from_dict(trace_to_dict(spec)) == spec


def test_round_trip_preserves_custom_fields():
    spec = TraceSpec(name="hot", kind="heavy-tail", n_requests=777,
                     rate_per_s=3.5, seed=42, distribution="pareto",
                     alpha=1.2)
    assert trace_from_dict(trace_to_dict(spec)) == spec


def test_load_trace_json_round_trip(tmp_path):
    spec = get_trace("diurnal").scaled(99)
    path = tmp_path / "trace.json"
    path.write_text(json.dumps(trace_to_dict(spec)))
    assert load_trace(str(path)) == spec


def test_load_trace_missing_file_is_one_line(tmp_path):
    with pytest.raises(ConfigurationError) as error:
        load_trace(str(tmp_path / "absent.json"))
    assert "cannot read trace spec" in _one_line(error)


def test_load_trace_invalid_json_is_one_line(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(ConfigurationError) as error:
        load_trace(str(path))
    assert "not valid JSON" in _one_line(error)


def test_get_trace_unknown_preset_is_one_line():
    with pytest.raises(ConfigurationError) as error:
        get_trace("full-moon")
    message = _one_line(error)
    assert "unknown trace preset 'full-moon'" in message
    assert "steady" in message


# ----------------------------------------------------------------------
# Validation: every malformed spec dies with a one-line error
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fields, fragment", [
    ({"kind": "lunar"}, "unknown trace kind"),
    ({"n_requests": -1}, "n_requests must be >= 0"),
    ({"rate_per_s": 0.0}, "rate_per_s must be positive"),
    ({"rate_per_s": -2.0}, "rate_per_s must be positive"),
    ({"seed": -5}, "seed must be >= 0"),
])
def test_spec_constructor_rejects_bad_fields(fields, fragment):
    with pytest.raises(ConfigurationError) as error:
        TraceSpec(**fields)
    assert fragment in _one_line(error)


@pytest.mark.parametrize("data, fragment", [
    ("not a dict", "must be a mapping"),
    (["kind", "poisson"], "must be a mapping"),
    ({"kind": "poisson", "typo": 1}, "unknown keys ['typo']"),
    ({"name": 7}, "name must be a string"),
    ({"kind": 7}, "kind must be a string"),
    ({"n_requests": 2.5}, "n_requests must be an integer"),
    ({"n_requests": True}, "n_requests must be an integer"),
    ({"rate_per_s": "fast"}, "rate_per_s must be a number"),
    ({"distribution": 3}, "distribution must be a string"),
])
def test_trace_from_dict_rejects_malformed_specs(data, fragment):
    with pytest.raises(ConfigurationError) as error:
        trace_from_dict(data)
    assert fragment in _one_line(error)


@pytest.mark.parametrize("call, fragment", [
    (lambda: arrivals_diurnal(10, 1.0, amplitude=1.0),
     "amplitude must be in [0, 1)"),
    (lambda: arrivals_diurnal(10, 1.0, period_s=0.0),
     "period_s must be positive"),
    (lambda: arrivals_mmpp(10, 1.0, burst_factor=0.5),
     "burst_factor must be >= 1"),
    (lambda: arrivals_mmpp(10, 1.0, burst_fraction=1.0),
     "burst_fraction must be in (0, 1)"),
    (lambda: arrivals_mmpp(10, 1.0, mean_dwell_s=0.0),
     "mean_dwell_s must be positive"),
    (lambda: arrivals_heavy_tail(10, 1.0, distribution="cauchy"),
     "unknown heavy-tail distribution"),
    (lambda: arrivals_heavy_tail(10, 1.0, sigma=0.0),
     "sigma must be positive"),
    (lambda: arrivals_heavy_tail(10, 1.0, alpha=1.0),
     "alpha must be > 1"),
    (lambda: session_trace(10, 1.0, turns_mean=0.5),
     "turns_mean must be >= 1"),
    (lambda: session_trace(10, 1.0, think_mean_s=0.0),
     "think_mean_s must be positive"),
])
def test_generator_parameter_validation(call, fragment):
    with pytest.raises(ConfigurationError) as error:
        call()
    assert fragment in _one_line(error)
