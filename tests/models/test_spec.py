"""ModelSpec geometry and memory accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.models.spec import AttentionKind, FeedForwardKind, ModelSpec
from repro.models.zoo import get_model


def test_opt175b_headline_numbers(opt_175b):
    assert opt_175b.d_model == 12288
    assert opt_175b.n_heads == 96
    assert opt_175b.d_head == 128
    assert opt_175b.n_layers == 96
    # ~175 billion parameters.
    assert opt_175b.total_params == pytest.approx(175e9, rel=0.01)


def test_opt175b_parameter_bytes_match_paper(opt_175b):
    # §3's footnote: transferring the BF16 parameters takes ~5 s over
    # PCIe 5.0, i.e. the model is in the 320-350 GB range.
    gb = opt_175b.total_param_bytes / 1e9
    assert 320 <= gb <= 360


def test_layer_params_are_12_d_squared(opt_175b):
    # OPT decoder layer: 3d^2 QKV + d^2 out + 4d^2 FC1 + 4d^2 FC2.
    assert opt_175b.layer_params == 12 * opt_175b.d_model**2


def test_kv_cache_growth_is_linear(opt_175b):
    one = opt_175b.kv_cache_bytes(1, 1)
    assert opt_175b.kv_cache_bytes(4, 8) == 32 * one
    # 2 tensors x d_model x 2 bytes x layers per token.
    assert one == 2 * 12288 * 2 * 96


def test_paper_memory_requirement_example(opt_175b):
    # §6: OPT-175B with B=1024 and L=256 requires ~1.4 TB.
    total_tb = opt_175b.inference_memory_bytes(1024, 256) / 1e12
    assert 1.3 <= total_tb <= 1.8


def test_intro_example_b256_l1024(opt_175b):
    # §1: B=256, L=1024 raises the requirement to ~1.6 TB (from
    # 330 GB at B=1).
    small = opt_175b.inference_memory_bytes(1, 1024)
    large = opt_175b.inference_memory_bytes(256, 1024)
    assert small / 1e9 < 400
    assert 1.4 <= large / 1e12 <= 2.2


def test_gqa_shrinks_kv_dim():
    llama = get_model("llama2-70b")
    assert llama.attention is AttentionKind.GROUPED_QUERY
    assert llama.kv_dim == 8 * llama.d_head
    assert llama.kv_dim < llama.d_model


def test_swiglu_has_two_input_matrices():
    llama = get_model("llama2-70b")
    assert llama.feed_forward is FeedForwardKind.SWIGLU
    assert llama.ffn_matrices_in == 2


def test_moe_stored_vs_active_params():
    moe = get_model("opt-moe-8x30b")
    dense = get_model("opt-30b")
    assert moe.ffn_params_stored == 8 * dense.ffn_params_stored
    assert moe.ffn_params_active == 2 * dense.ffn_params_active


def test_invalid_head_split_rejected():
    with pytest.raises(ConfigurationError):
        ModelSpec(name="bad", n_layers=2, d_model=100, n_heads=3,
                  d_ff=400)


def test_invalid_kv_head_split_rejected():
    with pytest.raises(ConfigurationError):
        ModelSpec(name="bad", n_layers=2, d_model=64, n_heads=4,
                  n_kv_heads=3, d_ff=256)


def test_moe_requires_multiple_experts():
    with pytest.raises(ConfigurationError):
        ModelSpec(name="bad", n_layers=2, d_model=64, n_heads=4,
                  d_ff=256, feed_forward=FeedForwardKind.MOE,
                  n_experts=1)


def test_describe_mentions_size(opt_30b):
    text = opt_30b.describe()
    assert "opt-30b" in text
    assert "48 layers" in text
