"""Table 1 cost formulas, checked symbol-for-symbol for OPT models."""

import pytest

from repro.errors import ConfigurationError
from repro.models.sublayers import (
    NUM_SUBLAYERS,
    RESIDUAL_SOURCE,
    Stage,
    Sublayer,
    decoder_layer_costs,
    ops_per_byte_heatmap,
    sublayer_cost,
)
from repro.models.zoo import get_model

B, L = 4, 128


@pytest.fixture
def spec():
    return get_model("opt-175b")


def d(spec):
    return spec.d_model


# ----------------------------------------------------------------------
# Prefill rows of Table 1 (BF16: the leading 2 is bytes/element).
# ----------------------------------------------------------------------
def test_prefill_qkv_mapping(spec):
    dm = d(spec)
    cost = sublayer_cost(spec, Sublayer.QKV_MAPPING, Stage.PREFILL, B, L)
    assert cost.d_x == 2 * B * L * dm
    assert cost.d_y == 6 * dm**2
    assert cost.flops == 6 * B * L * dm**2
    assert cost.d_kv_out == 4 * B * L * dm  # K and V, 2 bytes each


def test_prefill_attention_score(spec):
    dm = d(spec)
    cost = sublayer_cost(spec, Sublayer.ATTENTION_SCORE, Stage.PREFILL,
                         B, L)
    assert cost.d_x == 2 * B * L * dm
    assert cost.d_y == 2 * B * L * dm
    assert cost.flops == 2 * B * L**2 * dm


def test_prefill_attention_context(spec):
    dm = d(spec)
    cost = sublayer_cost(spec, Sublayer.ATTENTION_CONTEXT, Stage.PREFILL,
                         B, L)
    assert cost.d_y == 2 * B * L * dm
    assert cost.flops == 2 * B * L**2 * dm


def test_prefill_output_projection(spec):
    dm = d(spec)
    cost = sublayer_cost(spec, Sublayer.OUTPUT_PROJECTION, Stage.PREFILL,
                         B, L)
    assert cost.d_x == 2 * B * L * dm
    assert cost.d_y == 2 * dm**2
    assert cost.flops == 2 * B * L * dm**2


def test_prefill_fc1(spec):
    dm = d(spec)
    cost = sublayer_cost(spec, Sublayer.FC1, Stage.PREFILL, B, L)
    assert cost.d_x == 2 * B * L * dm
    assert cost.d_y == 8 * dm**2
    assert cost.flops == 8 * B * L * dm**2


def test_prefill_fc2(spec):
    dm = d(spec)
    cost = sublayer_cost(spec, Sublayer.FC2, Stage.PREFILL, B, L)
    assert cost.d_x == 8 * B * L * dm  # the 4x-wide FC1 output
    assert cost.d_y == 8 * dm**2
    assert cost.flops == 8 * B * L * dm**2


# ----------------------------------------------------------------------
# Decode rows of Table 1.
# ----------------------------------------------------------------------
def test_decode_qkv_mapping(spec):
    dm = d(spec)
    cost = sublayer_cost(spec, Sublayer.QKV_MAPPING, Stage.DECODE, B, L)
    assert cost.d_x == 2 * B * dm
    assert cost.d_y == 6 * dm**2
    assert cost.flops == 6 * B * dm**2


def test_decode_attention_sublayers(spec):
    dm = d(spec)
    for sub in (Sublayer.ATTENTION_SCORE, Sublayer.ATTENTION_CONTEXT):
        cost = sublayer_cost(spec, sub, Stage.DECODE, B, L)
        assert cost.d_y == 2 * B * L * dm
        assert cost.flops == 2 * B * L * dm


def test_decode_fc_sublayers(spec):
    dm = d(spec)
    fc1 = sublayer_cost(spec, Sublayer.FC1, Stage.DECODE, B, L)
    fc2 = sublayer_cost(spec, Sublayer.FC2, Stage.DECODE, B, L)
    assert fc1.d_x == 2 * B * dm
    assert fc2.d_x == 8 * B * dm
    assert fc1.d_y == fc2.d_y == 8 * dm**2
    assert fc1.flops == fc2.flops == 8 * B * dm**2


def test_decode_output_projection(spec):
    dm = d(spec)
    cost = sublayer_cost(spec, Sublayer.OUTPUT_PROJECTION, Stage.DECODE,
                         B, L)
    assert cost.d_x == 2 * B * dm
    assert cost.d_y == 2 * dm**2
    assert cost.flops == 2 * B * dm**2


# ----------------------------------------------------------------------
# Structural behaviour
# ----------------------------------------------------------------------
def test_six_sublayers_in_layer(spec):
    costs = decoder_layer_costs(spec, Stage.PREFILL, B, L)
    assert len(costs) == NUM_SUBLAYERS
    assert [c.sublayer for c in costs] == list(Sublayer)


def test_parameter_vs_kv_classification():
    params = {s for s in Sublayer if s.uses_parameters}
    kv = {s for s in Sublayer if s.uses_kv_cache}
    assert kv == {Sublayer.ATTENTION_SCORE, Sublayer.ATTENTION_CONTEXT}
    assert params | kv == set(Sublayer)
    assert not params & kv


def test_residual_sources():
    assert RESIDUAL_SOURCE[Sublayer.OUTPUT_PROJECTION] is \
        Sublayer.QKV_MAPPING
    assert RESIDUAL_SOURCE[Sublayer.FC2] is Sublayer.OUTPUT_PROJECTION
    assert Sublayer.FC1 not in RESIDUAL_SOURCE


def test_decode_attention_ops_per_byte_is_one(spec):
    # §6 Observation-2 rests on this: ops/byte of sublayer 2 stays ~1
    # regardless of B or L.
    for batch, length in ((1, 64), (64, 64), (900, 2048)):
        cost = sublayer_cost(spec, Sublayer.ATTENTION_SCORE,
                             Stage.DECODE, batch, length)
        assert cost.ops_per_byte == pytest.approx(1.0, abs=0.05)


def test_heatmap_range_matches_paper(spec):
    # Fig. 1: ops/byte spans ~1 to tens of thousands at L=512, B=180.
    heatmap = ops_per_byte_heatmap(spec, 180, 512)
    values = [v for row in heatmap.values() for v in row.values()]
    assert min(values) == pytest.approx(1.0, abs=0.05)
    assert max(values) > 10_000


def test_prefill_heatmap_extremes(spec):
    # §4 picks FC1 (most compute-intensive) and QK^T in decode (most
    # memory-intensive) as the extremes.
    heatmap = ops_per_byte_heatmap(spec, 180, 512)
    prefill = heatmap[Stage.PREFILL.value]
    decode = heatmap[Stage.DECODE.value]
    assert max(prefill, key=prefill.get) == "FC1"
    lowest = min(decode, key=decode.get)
    assert lowest in ("ATTENTION_SCORE", "ATTENTION_CONTEXT")
    assert decode[lowest] < 1.05


def test_moe_fc_costs_scale_with_experts():
    dense = get_model("opt-30b")
    moe = get_model("opt-moe-8x30b")
    dense_fc1 = sublayer_cost(dense, Sublayer.FC1, Stage.DECODE, B, L)
    moe_fc1 = sublayer_cost(moe, Sublayer.FC1, Stage.DECODE, B, L)
    # 8 experts stored, top-2 active.
    assert moe_fc1.d_y == 8 * dense_fc1.d_y
    assert moe_fc1.flops == 2 * dense_fc1.flops
    # §7.1: MoE slashes the FC sublayers' ops/byte.
    assert moe_fc1.ops_per_byte < dense_fc1.ops_per_byte


def test_gqa_kv_costs_shrink():
    llama = get_model("llama2-70b")
    cost = sublayer_cost(llama, Sublayer.ATTENTION_SCORE, Stage.DECODE,
                         B, L)
    # KV operand is kv_dim-wide, 8x smaller than d_model for Llama 2.
    assert cost.d_y == 2 * B * L * llama.kv_dim
    assert llama.kv_dim * 8 == llama.d_model


def test_invalid_inputs_rejected(spec):
    with pytest.raises(ConfigurationError):
        sublayer_cost(spec, Sublayer.FC1, Stage.DECODE, 0, 16)
    with pytest.raises(ConfigurationError):
        sublayer_cost(spec, Sublayer.FC1, Stage.DECODE, 1, 0)
