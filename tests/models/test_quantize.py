"""W8A16 quantization transform."""

import pytest

from repro.errors import ConfigurationError
from repro.models.quantize import quantize_weights, weight_compression_ratio
from repro.models.sublayers import Stage, Sublayer, sublayer_cost
from repro.models.zoo import get_model


def test_weights_halve_activations_unchanged(opt_30b):
    int8 = quantize_weights(opt_30b)
    assert int8.name == "opt-30b-int8"
    assert int8.total_param_bytes * 2 == opt_30b.total_param_bytes
    assert int8.bytes_per_param == opt_30b.bytes_per_param
    assert weight_compression_ratio(opt_30b, int8) == 2.0


def test_kv_cache_unchanged(opt_30b):
    int8 = quantize_weights(opt_30b)
    assert int8.kv_cache_bytes(4, 128) == opt_30b.kv_cache_bytes(4, 128)
    assert int8.peak_activation_bytes(4, 128) == \
        opt_30b.peak_activation_bytes(4, 128)


def test_sublayer_costs_reflect_weight_width(opt_30b):
    int8 = quantize_weights(opt_30b)
    for sub in Sublayer:
        bf16_cost = sublayer_cost(opt_30b, sub, Stage.DECODE, 4, 128)
        int8_cost = sublayer_cost(int8, sub, Stage.DECODE, 4, 128)
        assert int8_cost.d_x == bf16_cost.d_x
        assert int8_cost.flops == bf16_cost.flops
        if sub.uses_parameters:
            assert int8_cost.d_y * 2 == bf16_cost.d_y
        else:
            assert int8_cost.d_y == bf16_cost.d_y  # KV stays BF16


def test_architecture_preserved(opt_30b):
    int8 = quantize_weights(opt_30b)
    assert int8.layer_params == opt_30b.layer_params
    assert int8.d_model == opt_30b.d_model


def test_double_quantization_rejected(opt_30b):
    int8 = quantize_weights(opt_30b)
    with pytest.raises(ConfigurationError, match="not shrink"):
        quantize_weights(int8)
    with pytest.raises(ConfigurationError):
        quantize_weights(opt_30b, bytes_per_param=0)


def test_ratio_rejects_different_architectures(opt_30b):
    other = get_model("opt-66b")
    with pytest.raises(ConfigurationError, match="architecture"):
        weight_compression_ratio(opt_30b, other)


def test_quantized_inference_is_faster(opt_30b, spr_a100, eval_config):
    from repro.core.estimator import LiaEstimator
    from repro.models.workload import InferenceRequest

    request = InferenceRequest(1, 256, 32)
    bf16 = LiaEstimator(opt_30b, spr_a100, eval_config).estimate(request)
    int8 = LiaEstimator(quantize_weights(opt_30b), spr_a100,
                        eval_config).estimate(request)
    # OPT-30B in INT8 (30 GB) fits entirely in the A100's HBM, so the
    # gain exceeds the naive 2x weight-streaming bound.
    assert 1.2 <= bf16.latency / int8.latency <= 5.0
    assert int8.residency.n_resident_layers > \
        bf16.residency.n_resident_layers
