"""Workload descriptions and generators."""

import pytest

from repro.errors import ConfigurationError
from repro.models.workload import (
    InferenceRequest,
    TraceKind,
    azure_trace_lengths,
    make_request,
    max_input_len,
    paper_input_lengths,
    sweep_requests,
)
from repro.models.zoo import get_model


def test_request_derived_quantities():
    request = make_request(64, 256, 32)
    assert request.max_context_len == 287
    assert request.total_generated_tokens == 64 * 32


def test_decode_context_lengths_grow_by_one():
    request = make_request(1, 100, 4)
    assert list(request.decode_context_lengths()) == [100, 101, 102, 103]


def test_request_validation():
    for bad in ((0, 10, 10), (1, 0, 10), (1, 10, 0)):
        with pytest.raises(ConfigurationError):
            make_request(*bad)


def test_paper_lmax_values():
    # §7: L_max is 2016 for L_out=32 and 1792 for L_out=256.
    opt = get_model("opt-175b")
    assert max_input_len(opt, 32) == 2016
    assert max_input_len(opt, 256) == 1792
    assert paper_input_lengths(opt, 32) == [32, 256, 2016]


def test_fits_model():
    opt = get_model("opt-175b")
    assert make_request(1, 2016, 32).fits_model(opt)
    assert not make_request(1, 2017, 32).fits_model(opt)


def test_sweep_is_cartesian():
    requests = sweep_requests((1, 64), (32, 256), (32,))
    assert len(requests) == 4
    assert requests[0] == InferenceRequest(1, 32, 32)
    assert requests[-1] == InferenceRequest(64, 256, 32)


def test_azure_trace_is_deterministic_and_bounded():
    opt = get_model("opt-175b")
    first = azure_trace_lengths(50, opt, TraceKind.CODE, seed=7)
    second = azure_trace_lengths(50, opt, TraceKind.CODE, seed=7)
    assert first == second
    assert all(r.output_len == 32 for r in first)
    assert all(32 <= r.input_len <= 2016 for r in first)


def test_azure_trace_conversation_output_len():
    opt = get_model("opt-175b")
    requests = azure_trace_lengths(10, opt, TraceKind.CONVERSATION)
    assert all(r.output_len == 256 for r in requests)


def test_azure_trace_rejects_bad_count():
    opt = get_model("opt-175b")
    with pytest.raises(ConfigurationError):
        azure_trace_lengths(0, opt)
