"""Model zoo registry."""

import pytest

from repro.errors import ConfigurationError
from repro.models.zoo import MODEL_ZOO, get_model, list_models


def test_paper_models_present():
    for name in ("opt-30b", "opt-66b", "opt-175b", "llama2-70b",
                 "chinchilla-70b", "bloom-176b"):
        assert name in MODEL_ZOO


def test_parameter_counts_match_names():
    expectations = {
        "opt-6.7b": 6.7e9,
        "opt-13b": 13e9,
        "opt-30b": 30e9,
        "opt-66b": 66e9,
        "opt-175b": 175e9,
        "llama2-70b": 70e9,
        "chinchilla-70b": 70e9,
        "bloom-176b": 176e9,
    }
    for name, expected in expectations.items():
        spec = get_model(name)
        assert spec.total_params == pytest.approx(expected, rel=0.12), name


def test_unknown_model_raises():
    with pytest.raises(ConfigurationError, match="unknown model"):
        get_model("gpt-5")


def test_list_models_sorted():
    names = list_models()
    assert names == sorted(names)
    assert "opt-175b" in names


def test_tiny_model_is_small():
    tiny = get_model("opt-tiny")
    assert tiny.total_params < 1_000_000
