"""IPEX (CPU-only) baseline."""

import pytest

from repro.baselines.ipex import IpexEstimator
from repro.core.estimator import LiaEstimator
from repro.core.policy import FULL_CPU
from repro.models.workload import InferenceRequest


def test_everything_on_cpu(opt_30b, spr_a100, eval_config):
    estimate = IpexEstimator(opt_30b, spr_a100, eval_config).estimate(
        InferenceRequest(1, 256, 32))
    assert estimate.framework == "ipex"
    assert estimate.prefill_policy == FULL_CPU
    assert estimate.decode_policy == FULL_CPU
    assert estimate.total.gpu_compute == 0.0
    assert estimate.total.transfer == 0.0


def test_no_gpu_residency(opt_30b, spr_a100, eval_config):
    estimate = IpexEstimator(opt_30b, spr_a100, eval_config).estimate(
        InferenceRequest(1, 256, 32))
    assert estimate.residency.n_resident_layers == 0


def test_lia_beats_ipex_online_opt30b(opt_30b, spr_a100, eval_config):
    # Fig. 10: 1.8-2.1x for OPT-30B on SPR-A100.
    request = InferenceRequest(1, 256, 32)
    lia = LiaEstimator(opt_30b, spr_a100, eval_config).estimate(request)
    ipex = IpexEstimator(opt_30b, spr_a100, eval_config).estimate(request)
    assert 1.5 <= ipex.latency / lia.latency <= 2.6


def test_lia_vs_ipex_gap_smaller_for_175b(opt_30b, opt_175b, spr_a100,
                                          eval_config):
    # Fig. 10: the gap narrows to 1.1-1.3x for OPT-175B (fewer
    # resident layers).
    request = InferenceRequest(1, 256, 32)
    gap_30b = (IpexEstimator(opt_30b, spr_a100,
                             eval_config).estimate(request).latency
               / LiaEstimator(opt_30b, spr_a100,
                              eval_config).estimate(request).latency)
    gap_175b = (IpexEstimator(opt_175b, spr_a100,
                              eval_config).estimate(request).latency
                / LiaEstimator(opt_175b, spr_a100,
                               eval_config).estimate(request).latency)
    assert gap_175b < gap_30b
    assert 1.0 <= gap_175b <= 1.6


def test_ipex_prefill_dominates_long_inputs(opt_30b, spr_a100,
                                            eval_config):
    # §7.3: at L_in = 2016, L_out = 32, IPEX spends ~92 % of its time
    # in prefill.
    estimate = IpexEstimator(opt_30b, spr_a100, eval_config).estimate(
        InferenceRequest(64, 2016, 32))
    share = estimate.prefill.time / estimate.latency
    assert share > 0.75
