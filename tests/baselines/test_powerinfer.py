"""PowerInfer baseline model (§7.9)."""

import pytest

from repro.baselines.powerinfer import (
    PowerInferEstimator,
    PowerInferSettings,
)
from repro.core.estimator import LiaEstimator
from repro.errors import CapacityError
from repro.models.workload import InferenceRequest
from repro.models.zoo import get_model


@pytest.fixture
def llama():
    return get_model("llama2-70b")


def test_runs_at_small_batch(llama, gnr_a100, eval_config):
    estimate = PowerInferEstimator(llama, gnr_a100,
                                   eval_config).estimate(
        InferenceRequest(1, 32, 32))
    assert estimate.framework == "powerinfer"
    assert estimate.latency > 0.0


def test_oom_at_b900(llama, gnr_a100, eval_config):
    # Fig. 15: CUDA OOM for the throughput-oriented B=900 scenario.
    estimator = PowerInferEstimator(llama, gnr_a100, eval_config)
    with pytest.raises(CapacityError, match="HBM"):
        estimator.estimate(InferenceRequest(900, 32, 32))


def test_lia_faster_at_b1(llama, gnr_a100, eval_config):
    # Fig. 15: LIA is at least 1.4x faster.
    request = InferenceRequest(1, 32, 32)
    lia = LiaEstimator(llama, gnr_a100, eval_config).estimate(request)
    power = PowerInferEstimator(llama, gnr_a100,
                                eval_config).estimate(request)
    assert 1.1 <= power.latency / lia.latency <= 3.0


def test_gap_grows_with_batch(llama, gnr_a100, eval_config):
    # Fig. 15: the gap widens toward 9x at B=64 (poor batch scaling).
    def gap(batch):
        request = InferenceRequest(batch, 32, 32)
        lia = LiaEstimator(llama, gnr_a100, eval_config).estimate(request)
        power = PowerInferEstimator(llama, gnr_a100,
                                    eval_config).estimate(request)
        return power.latency / lia.latency

    assert gap(64) > gap(1)
    assert 2.0 <= gap(64) <= 12.0


def test_microbatching_drives_scaling(llama, gnr_a100, eval_config):
    estimator = PowerInferEstimator(llama, gnr_a100, eval_config)
    assert estimator._microbatches(1) == 1
    assert estimator._microbatches(8) == 1
    assert estimator._microbatches(9) == 2
    assert estimator._microbatches(64) == 8


def test_hot_fraction_bounds_gpu_footprint(llama, gnr_a100, eval_config):
    small = PowerInferEstimator(
        llama, gnr_a100, eval_config,
        PowerInferSettings(hot_fraction=0.01))
    big = PowerInferEstimator(
        llama, gnr_a100, eval_config,
        PowerInferSettings(hot_fraction=0.5))
    request = InferenceRequest(1, 32, 32)
    assert small.gpu_footprint(request) < big.gpu_footprint(request)


def test_memory_report(llama, gnr_a100, eval_config):
    estimate = PowerInferEstimator(llama, gnr_a100,
                                   eval_config).estimate(
        InferenceRequest(1, 32, 32))
    assert estimate.memory.gpu_bytes > 0
    assert estimate.memory.ddr_bytes > 0


def test_settings_validation():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        PowerInferSettings(hot_fraction=0.0)
    with pytest.raises(ConfigurationError):
        PowerInferSettings(hot_fraction=1.0)
    with pytest.raises(ConfigurationError):
        PowerInferSettings(cold_activation=0.0)
    with pytest.raises(ConfigurationError):
        PowerInferSettings(sparse_bandwidth_efficiency=1.5)
    with pytest.raises(ConfigurationError):
        PowerInferSettings(max_microbatch=0)
