"""FlexGen baseline model."""

import pytest

from repro.baselines.flexgen import FlexGenEstimator, FlexGenSettings
from repro.core.estimator import LiaEstimator
from repro.core.policy import FULL_GPU, PARTIAL_CPU
from repro.models.workload import InferenceRequest


def test_kv_fits_gpu_at_b1_only(opt_175b, spr_a100, eval_config):
    # Fig. 3: at B=1 KV/activations live on the GPU; at B=32 they
    # spill to host memory.
    estimator = FlexGenEstimator(opt_175b, spr_a100, eval_config)
    assert estimator.kv_fits_gpu(InferenceRequest(1, 512, 32))
    assert not estimator.kv_fits_gpu(InferenceRequest(32, 1024, 32))


def test_decode_policy_follows_kv_placement(opt_175b, spr_a100,
                                            eval_config):
    estimator = FlexGenEstimator(opt_175b, spr_a100, eval_config)
    assert estimator.decode_policy(InferenceRequest(1, 512, 32)) == \
        FULL_GPU
    assert estimator.decode_policy(InferenceRequest(64, 1024, 32)) == \
        PARTIAL_CPU


def test_compute_offload_disable(opt_175b, spr_a100, eval_config):
    estimator = FlexGenEstimator(opt_175b, spr_a100, eval_config,
                                 FlexGenSettings(compute_offload=False))
    assert estimator.decode_policy(InferenceRequest(64, 1024, 32)) == \
        FULL_GPU


def test_transfer_dominates_at_b1(opt_175b, spr_a100, eval_config):
    # Fig. 3 / Insight-1: >90 % of FlexGen's B=1 time is transfers.
    estimate = FlexGenEstimator(
        opt_175b, spr_a100,
        eval_config.without_overlap()).estimate(
        InferenceRequest(1, 256, 32))
    share = estimate.total.transfer / estimate.latency
    assert share > 0.9


def test_lia_beats_flexgen_online(opt_175b, spr_a100, eval_config):
    # Fig. 10: 8.5-12x on SPR-A100 for OPT-175B.
    request = InferenceRequest(1, 256, 32)
    lia = LiaEstimator(opt_175b, spr_a100, eval_config).estimate(request)
    flexgen = FlexGenEstimator(opt_175b, spr_a100,
                               eval_config).estimate(request)
    assert 4.0 <= flexgen.latency / lia.latency <= 16.0


def test_lia_beats_flexgen_offline_b900(opt_30b, spr_a100, eval_config):
    # Fig. 11 / Table 4: ~1.3-2x at B=900 (same policy, better AMX
    # and whole-batch decode).
    request = InferenceRequest(900, 256, 32)
    lia = LiaEstimator(opt_30b, spr_a100, eval_config).estimate(request)
    flexgen = FlexGenEstimator(opt_30b, spr_a100,
                               eval_config).estimate(request)
    ratio = lia.throughput / flexgen.throughput
    assert 1.05 <= ratio <= 2.5


def test_decode_minibatch_penalty_applied(opt_30b, spr_a100,
                                          eval_config):
    request = InferenceRequest(900, 256, 32)
    default = FlexGenEstimator(opt_30b, spr_a100,
                               eval_config).estimate(request)
    no_penalty = FlexGenEstimator(
        opt_30b, spr_a100, eval_config,
        FlexGenSettings(decode_compute_penalty=1.0)).estimate(request)
    assert default.latency > no_penalty.latency


def test_flexgen_uses_avx512(opt_30b, spr_a100, eval_config):
    estimator = FlexGenEstimator(opt_30b, spr_a100, eval_config)
    assert estimator.config.cpu_engine == "avx512"


def test_framework_name(opt_30b, spr_a100, eval_config):
    estimate = FlexGenEstimator(opt_30b, spr_a100,
                                eval_config).estimate(
        InferenceRequest(1, 64, 8))
    assert estimate.framework == "flexgen"
    assert estimate.prefill_policy == FULL_GPU


def test_settings_validation():
    import pytest as _pytest

    from repro.errors import ConfigurationError

    with _pytest.raises(ConfigurationError):
        FlexGenSettings(minibatches=0)
    with _pytest.raises(ConfigurationError):
        FlexGenSettings(decode_compute_penalty=0.9)
