"""Naive data-offloading baseline and GPU pooling (§3.1, §8)."""

import pytest

from repro.baselines.data_offload import DataOffloadEstimator, _pool_gpus
from repro.baselines.flexgen import FlexGenEstimator
from repro.core.estimator import LiaEstimator
from repro.core.policy import FULL_GPU
from repro.hardware.system import get_system
from repro.models.workload import InferenceRequest


def test_never_compute_offloads(opt_175b, spr_a100, eval_config):
    estimate = DataOffloadEstimator(opt_175b, spr_a100,
                                    eval_config).estimate(
        InferenceRequest(32, 1024, 32))
    assert estimate.framework == "data-offload"
    assert estimate.decode_policy == FULL_GPU


def test_slower_than_flexgen_with_offload(opt_175b, spr_a100,
                                          eval_config):
    # Compute-offloading exists because it helps at long L (§3.2).
    request = InferenceRequest(32, 1024, 32)
    plain = DataOffloadEstimator(opt_175b, spr_a100,
                                 eval_config).estimate(request)
    flexgen = FlexGenEstimator(opt_175b, spr_a100,
                               eval_config).estimate(request)
    assert flexgen.latency <= plain.latency


def test_pooling_single_gpu_is_identity(spr_a100):
    assert _pool_gpus(spr_a100) is spr_a100


def test_pooling_aggregates_v100s():
    pooled = _pool_gpus(get_system("3xv100"))
    assert pooled.n_gpus == 1
    v100 = get_system("3xv100").gpu
    assert pooled.gpu.memory_capacity == 3 * v100.memory_capacity
    assert pooled.gpu.engine.peak_flops == 3 * v100.engine.peak_flops
    assert pooled.host_link.bandwidth == pytest.approx(
        3 * get_system("3xv100").host_link.bandwidth)


def test_section8_cheap_gpu_alternative_loses(opt_175b, gnr_a100,
                                              eval_config):
    # §8: LIA on GNR-A100 beats 3xV100 data offloading by 6.3-11x in
    # latency (we assert a generous multi-x band).
    request = InferenceRequest(1, 256, 32)
    lia = LiaEstimator(opt_175b, gnr_a100, eval_config).estimate(request)
    cheap = DataOffloadEstimator(opt_175b, get_system("3xv100"),
                                 eval_config).estimate(request)
    assert cheap.latency / lia.latency >= 3.0
