"""Tensor-parallel DGX baseline (§7.8 / Fig. 14)."""

import pytest

from repro.baselines.multi_gpu import (
    AllReduceModel,
    TensorParallelEstimator,
)
from repro.core.estimator import LiaEstimator
from repro.errors import CapacityError, ConfigurationError
from repro.hardware.system import get_system
from repro.models.workload import InferenceRequest


@pytest.fixture
def dgx():
    return get_system("dgx-a100")


def test_allreduce_ring_formula():
    model = AllReduceModel(n_ranks=8, bandwidth=600e9, hop_latency=5e-6)
    time = model.time(8e6)
    expected = 2 * 7 / 8 * 8e6 / 600e9 + 7 * 5e-6
    assert time == pytest.approx(expected)
    assert AllReduceModel(1, 600e9, 5e-6).time(8e6) == 0.0


def test_requires_multiple_gpus(opt_175b, spr_a100):
    with pytest.raises(ConfigurationError, match=">= 2 GPUs"):
        TensorParallelEstimator(opt_175b, spr_a100)


def test_weights_shard_across_gpus(opt_175b, dgx):
    estimator = TensorParallelEstimator(opt_175b, dgx)
    request = InferenceRequest(1, 256, 32)
    per_gpu = estimator.per_gpu_bytes(request)
    assert per_gpu >= opt_175b.total_param_bytes / 8
    assert per_gpu < opt_175b.total_param_bytes / 4


def test_estimate_runs_at_small_batch(opt_175b, dgx):
    estimate = TensorParallelEstimator(opt_175b, dgx).estimate(
        InferenceRequest(1, 256, 32))
    assert estimate.framework == "tensor-parallel"
    assert estimate.total.cpu_compute == 0.0
    assert estimate.throughput > 0.0


def test_oom_at_b900(opt_175b, dgx):
    # Fig. 14: the DGX cannot hold OPT-175B's KV cache at B=900.
    estimator = TensorParallelEstimator(opt_175b, dgx)
    with pytest.raises(CapacityError):
        estimator.estimate(InferenceRequest(900, 256, 32))


def test_lia_wins_per_gpu_at_b1(opt_175b, dgx, gnr_a100, eval_config):
    # Fig. 14: LIA achieves 1.4-1.8x higher per-GPU throughput at B=1.
    request = InferenceRequest(1, 256, 32)
    lia = LiaEstimator(opt_175b, gnr_a100, eval_config).estimate(request)
    dgx_est = TensorParallelEstimator(opt_175b, dgx).estimate(request)
    ratio = lia.throughput / (dgx_est.throughput / 8)
    assert 1.1 <= ratio <= 2.2


def test_dgx_competitive_at_b64(opt_175b, dgx, gnr_a100, eval_config):
    # Fig. 14: at B=64 the DGX catches up (paper: ~1.4x ahead).
    request = InferenceRequest(64, 256, 32)
    lia = LiaEstimator(opt_175b, gnr_a100, eval_config).estimate(request)
    dgx_est = TensorParallelEstimator(opt_175b, dgx).estimate(request)
    ratio = lia.throughput / (dgx_est.throughput / 8)
    assert 0.5 <= ratio <= 1.3


def test_per_gpu_throughput_helper(opt_175b, dgx):
    estimator = TensorParallelEstimator(opt_175b, dgx)
    request = InferenceRequest(1, 128, 8)
    assert estimator.per_gpu_throughput(request) == pytest.approx(
        estimator.estimate(request).throughput / 8)


def test_more_gpus_do_not_slow_decode(opt_175b, dgx):
    # Sanity: the 8-way shard beats a hypothetical 2-way shard in
    # per-step latency (compute shrinks faster than all-reduce grows
    # at these sizes).
    from repro.models.sublayers import Stage
    est = TensorParallelEstimator(opt_175b, dgx)
    eight = est._layer_time(Stage.PREFILL, 64, 512)
    assert eight > 0.0
